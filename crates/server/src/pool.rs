//! A bounded worker pool with explicit backpressure.
//!
//! Requests are admitted with [`WorkerPool::try_submit`], which fails
//! *immediately* when the queue is at capacity — the HTTP layer turns
//! that into `503` + `Retry-After` instead of queueing without bound.
//! Shutdown is graceful by construction: workers drain every job that
//! was admitted before exiting, so no accepted request is ever
//! silently dropped.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use branchlab_telemetry::Gauge;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
    depth: Arc<Gauge>,
}

/// A fixed set of worker threads pulling jobs from a bounded queue.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn `workers` threads servicing a queue of at most `capacity`
    /// pending jobs; `depth` tracks the live queue length.
    #[must_use]
    pub fn new(workers: usize, capacity: usize, depth: Arc<Gauge>) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
            depth,
        });
        let mut handles = Vec::new();
        for i in 0..workers.max(1) {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("bld-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
            handles.push(handle);
        }
        WorkerPool {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Admit one job, or reject it without blocking when the queue is
    /// full or the pool is shutting down.
    ///
    /// # Errors
    /// Returns [`SubmitError`] naming the rejection reason.
    pub fn try_submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), SubmitError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if queue.len() >= self.shared.capacity {
            return Err(SubmitError::QueueFull);
        }
        queue.push_back(Box::new(job));
        self.shared.depth.set(queue.len() as i64);
        drop(queue);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Stop admitting jobs, let the workers drain everything already
    /// queued, and join them.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        let handles = std::mem::take(
            &mut *self
                .workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Why [`WorkerPool::try_submit`] rejected a job.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — the caller should shed load.
    QueueFull,
    /// The pool is draining for shutdown.
    ShuttingDown,
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.depth.set(queue.len() as i64);
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    fn gauge() -> Arc<Gauge> {
        branchlab_telemetry::MetricsRegistry::new().gauge("q")
    }

    #[test]
    fn jobs_run_and_drain_on_shutdown() {
        let pool = WorkerPool::new(2, 16, gauge());
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let done = Arc::clone(&done);
            pool.try_submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let pool = WorkerPool::new(1, 1, gauge());
        // Park the lone worker so the queue backs up deterministically.
        let (tx, rx) = mpsc::channel::<()>();
        pool.try_submit(move || {
            let _ = rx.recv_timeout(Duration::from_secs(10));
        })
        .unwrap();
        // Wait for the worker to claim the parked job.
        let t0 = std::time::Instant::now();
        loop {
            let occupied = pool
                .shared
                .queue
                .lock()
                .map(|q| q.is_empty())
                .unwrap_or(false);
            if occupied || t0.elapsed() > Duration::from_secs(5) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.try_submit(|| {}).unwrap(); // fills the 1-slot queue
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::QueueFull));
        tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_jobs() {
        let pool = WorkerPool::new(1, 4, gauge());
        pool.shutdown();
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::ShuttingDown));
    }
}
