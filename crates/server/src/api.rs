//! The `/v1/sweep` request schema and its evaluation path.
//!
//! A sweep request names a benchmark, an optional `(scale, seed)`
//! override, a list of predictor configurations, and optional
//! return-address-stack depths. Evaluation plans the whole request
//! into one [`SweepBatch`] over the benchmark's resident trace, so a
//! request costs one replay pass no matter how many configurations it
//! carries — and the response is **deterministic down to the byte**:
//! the same request always renders the same JSON, whether it was
//! computed, coalesced onto a concurrent computation, or served from
//! the LRU cache. (The test suite asserts byte-equality against a
//! direct [`SweepBatch`] run.)

use std::sync::Arc;

use branchlab_experiments::trace_replay::scale_name;
use branchlab_experiments::{ExperimentConfig, SweepBatch};
use branchlab_predict::{
    AlwaysNotTaken, AlwaysTaken, BackwardTakenForwardNot, BranchPredictor, Cbtb, CbtbConfig,
    FillPolicy, Gshare, LocalHistory, MlBtb, MlBtbConfig, MlBtbLevel, OpcodeBias, PredStats,
    ReturnAddressStack, Sbtb, SbtbConfig,
};
use branchlab_telemetry::{json, JsonValue, SpanLink};
use branchlab_trace::hash_bytes;
use branchlab_workloads::{benchmark, Benchmark, Scale};

/// Most predictor configurations accepted in one request.
pub const MAX_PREDICTORS: usize = 512;
/// Most return-address-stack depths accepted in one request.
pub const MAX_RAS_DEPTHS: usize = 64;

/// A sweep-path failure, mapped onto an HTTP status by the router.
#[derive(Clone, Debug)]
pub enum ApiError {
    /// Unparseable or out-of-range request (400).
    BadRequest(String),
    /// Unknown benchmark (404).
    UnknownBenchmark(String),
    /// Queue at capacity or pool draining (503 + `Retry-After`).
    Overloaded,
    /// Admission control projected the queue wait past the request's
    /// deadline and shed the request up front (503 + `Retry-After`
    /// derived from the projection).
    AdmissionRejected {
        /// The projected queue wait, µs.
        projected_wait_us: u64,
        /// The deadline budget the projection exceeded, µs.
        deadline_us: u64,
    },
    /// The request's deadline passed before a result was ready (504).
    DeadlineExpired,
    /// Evaluation failed (500).
    Internal(String),
}

impl ApiError {
    /// The HTTP status this error maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            ApiError::BadRequest(_) => 400,
            ApiError::UnknownBenchmark(_) => 404,
            ApiError::Overloaded | ApiError::AdmissionRejected { .. } => 503,
            ApiError::DeadlineExpired => 504,
            ApiError::Internal(_) => 500,
        }
    }

    /// Seconds a client should wait before retrying, when this error
    /// carries sizing information (rendered as `Retry-After`).
    #[must_use]
    pub fn retry_after_secs(&self) -> Option<u64> {
        match self {
            ApiError::Overloaded => Some(1),
            // Round the projected wait up to whole seconds; even a
            // microsecond projection earns a 1s floor so a retrying
            // client never busy-loops against a loaded daemon.
            ApiError::AdmissionRejected {
                projected_wait_us, ..
            } => Some(projected_wait_us.div_ceil(1_000_000).max(1)),
            _ => None,
        }
    }

    /// The error message for the JSON body.
    #[must_use]
    pub fn message(&self) -> String {
        match self {
            ApiError::BadRequest(m) => m.clone(),
            ApiError::UnknownBenchmark(name) => format!("unknown benchmark `{name}`"),
            ApiError::Overloaded => "sweep queue is full; retry shortly".to_string(),
            ApiError::AdmissionRejected {
                projected_wait_us,
                deadline_us,
            } => format!(
                "admission rejected: projected queue wait {projected_wait_us}us exceeds the \
                 {deadline_us}us deadline; retry after backoff"
            ),
            ApiError::DeadlineExpired => "deadline expired before the sweep completed".to_string(),
            ApiError::Internal(m) => format!("sweep evaluation failed: {m}"),
        }
    }
}

/// One predictor configuration, fully resolved (defaults applied at
/// parse time so the canonical form is unambiguous).
#[derive(Clone, Debug, PartialEq)]
pub enum PredictorSpec {
    /// Simple Branch Target Buffer.
    Sbtb {
        /// Total entries.
        entries: usize,
        /// Ways per set.
        ways: usize,
    },
    /// Counter-based Branch Target Buffer.
    Cbtb {
        /// Total entries.
        entries: usize,
        /// Ways per set.
        ways: usize,
        /// Counter width in bits.
        counter_bits: u8,
        /// Prediction threshold.
        threshold: u8,
        /// `C > T` (paper-literal) instead of `C ≥ T`.
        strict_greater: bool,
    },
    /// Always predict taken.
    AlwaysTaken,
    /// Always predict not taken.
    AlwaysNotTaken,
    /// Backward taken, forward not taken.
    Btfn,
    /// Opcode-bias heuristic.
    OpcodeBias,
    /// Global-history two-level predictor.
    Gshare {
        /// log2 of the pattern table size.
        table_bits: u32,
        /// Global history length.
        history_bits: u32,
    },
    /// Per-branch local-history two-level predictor.
    Local {
        /// log2 of the pattern table size.
        table_bits: u32,
        /// Local history length.
        history_bits: u32,
    },
    /// Two-level BTB hierarchy (small L1 backed by a larger L2).
    Mlbtb {
        /// L1 entries.
        l1_entries: usize,
        /// L1 ways per set.
        l1_ways: usize,
        /// L1 lookup-latency penalty in cycles.
        l1_latency: u32,
        /// L2 entries.
        l2_entries: usize,
        /// L2 ways per set.
        l2_ways: usize,
        /// L2 lookup-latency penalty in cycles.
        l2_latency: u32,
        /// `staged` fill/promotion policy instead of inclusive-L1.
        staged: bool,
        /// Direction counter width in bits.
        counter_bits: u8,
        /// Predict-taken threshold.
        threshold: u8,
    },
}

fn field_usize(v: &JsonValue, key: &str, default: usize) -> Result<usize, ApiError> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => x
            .as_int()
            .and_then(|i| usize::try_from(i).ok())
            .ok_or_else(|| ApiError::BadRequest(format!("`{key}` must be a non-negative integer"))),
    }
}

fn field_u32(v: &JsonValue, key: &str, default: u32) -> Result<u32, ApiError> {
    field_usize(v, key, default as usize).and_then(|n| {
        u32::try_from(n).map_err(|_| ApiError::BadRequest(format!("`{key}` out of range")))
    })
}

fn field_u8(v: &JsonValue, key: &str, default: u8) -> Result<u8, ApiError> {
    field_usize(v, key, default as usize).and_then(|n| {
        u8::try_from(n).map_err(|_| ApiError::BadRequest(format!("`{key}` out of range")))
    })
}

fn field_bool(v: &JsonValue, key: &str, default: bool) -> Result<bool, ApiError> {
    match v.get(key) {
        None => Ok(default),
        Some(JsonValue::Bool(b)) => Ok(*b),
        Some(_) => Err(ApiError::BadRequest(format!("`{key}` must be a boolean"))),
    }
}

impl PredictorSpec {
    /// Parse one entry of the request's `predictors` array.
    ///
    /// # Errors
    /// [`ApiError::BadRequest`] for unknown kinds or out-of-range
    /// geometry (bounds keep a single request from allocating
    /// unbounded table memory).
    pub fn parse(v: &JsonValue) -> Result<Self, ApiError> {
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ApiError::BadRequest("predictor entry needs a `kind`".into()))?;
        let spec = match kind {
            "sbtb" => {
                let entries = field_usize(v, "entries", 256)?;
                PredictorSpec::Sbtb {
                    entries,
                    ways: field_usize(v, "ways", entries)?,
                }
            }
            "cbtb" => {
                let entries = field_usize(v, "entries", 256)?;
                PredictorSpec::Cbtb {
                    entries,
                    ways: field_usize(v, "ways", entries)?,
                    counter_bits: field_u8(v, "counter_bits", 2)?,
                    threshold: field_u8(v, "threshold", 2)?,
                    strict_greater: field_bool(v, "strict_greater", false)?,
                }
            }
            "always_taken" => PredictorSpec::AlwaysTaken,
            "always_not_taken" => PredictorSpec::AlwaysNotTaken,
            "btfn" => PredictorSpec::Btfn,
            "opcode_bias" => PredictorSpec::OpcodeBias,
            "gshare" => PredictorSpec::Gshare {
                table_bits: field_u32(v, "table_bits", 12)?,
                history_bits: field_u32(v, "history_bits", 8)?,
            },
            "local" => PredictorSpec::Local {
                table_bits: field_u32(v, "table_bits", 12)?,
                history_bits: field_u32(v, "history_bits", 8)?,
            },
            "mlbtb" => {
                let staged = match v.get("policy").and_then(JsonValue::as_str) {
                    None | Some("l1") => false,
                    Some("staged") => true,
                    Some(other) => {
                        return Err(ApiError::BadRequest(format!(
                            "unknown mlbtb policy `{other}` (expected `l1` or `staged`)"
                        )))
                    }
                };
                PredictorSpec::Mlbtb {
                    l1_entries: field_usize(v, "l1_entries", 64)?,
                    l1_ways: field_usize(v, "l1_ways", 4)?,
                    l1_latency: field_u32(v, "l1_latency", 0)?,
                    l2_entries: field_usize(v, "l2_entries", 2048)?,
                    l2_ways: field_usize(v, "l2_ways", 8)?,
                    l2_latency: field_u32(v, "l2_latency", 2)?,
                    staged,
                    counter_bits: field_u8(v, "counter_bits", 2)?,
                    threshold: field_u8(v, "threshold", 2)?,
                }
            }
            other => {
                return Err(ApiError::BadRequest(format!(
                    "unknown predictor kind `{other}`"
                )))
            }
        };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), ApiError> {
        let bad = |m: &str| Err(ApiError::BadRequest(m.to_string()));
        match *self {
            PredictorSpec::Sbtb { entries, ways } | PredictorSpec::Cbtb { entries, ways, .. } => {
                if entries == 0 || entries > 1 << 20 {
                    return bad("`entries` must be in 1..=1048576");
                }
                if ways == 0 || ways > entries {
                    return bad("`ways` must be in 1..=entries");
                }
                if let PredictorSpec::Cbtb {
                    counter_bits,
                    threshold,
                    ..
                } = *self
                {
                    if counter_bits == 0 || counter_bits > 8 {
                        return bad("`counter_bits` must be in 1..=8");
                    }
                    if u16::from(threshold) >= 1 << counter_bits {
                        return bad("`threshold` must fit in `counter_bits`");
                    }
                }
            }
            PredictorSpec::Gshare {
                table_bits,
                history_bits,
            }
            | PredictorSpec::Local {
                table_bits,
                history_bits,
            } => {
                if table_bits == 0 || table_bits > 24 {
                    return bad("`table_bits` must be in 1..=24");
                }
                if history_bits > 32 {
                    return bad("`history_bits` must be in 0..=32");
                }
            }
            PredictorSpec::Mlbtb {
                l1_entries,
                l1_ways,
                l1_latency,
                l2_entries,
                l2_ways,
                l2_latency,
                counter_bits,
                threshold,
                ..
            } => {
                for (level, entries, ways) in
                    [("l1", l1_entries, l1_ways), ("l2", l2_entries, l2_ways)]
                {
                    if entries == 0 || entries > 1 << 20 {
                        return Err(ApiError::BadRequest(format!(
                            "`{level}_entries` must be in 1..=1048576"
                        )));
                    }
                    if ways == 0 || ways > entries {
                        return Err(ApiError::BadRequest(format!(
                            "`{level}_ways` must be in 1..=entries"
                        )));
                    }
                    if entries % ways != 0 || !(entries / ways).is_power_of_two() {
                        return Err(ApiError::BadRequest(format!(
                            "`{level}_entries` / `{level}_ways` must give a power-of-two set count"
                        )));
                    }
                }
                if l1_latency > 1000 || l2_latency > 1000 {
                    return bad("level latencies must be in 0..=1000");
                }
                if counter_bits == 0 || counter_bits > 7 {
                    return bad("`counter_bits` must be in 1..=7");
                }
                if threshold == 0 || u16::from(threshold) >= 1 << counter_bits {
                    return bad("`threshold` must be in 1..=counter max");
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// The short kind name used in canonical forms and responses.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            PredictorSpec::Sbtb { .. } => "sbtb",
            PredictorSpec::Cbtb { .. } => "cbtb",
            PredictorSpec::AlwaysTaken => "always_taken",
            PredictorSpec::AlwaysNotTaken => "always_not_taken",
            PredictorSpec::Btfn => "btfn",
            PredictorSpec::OpcodeBias => "opcode_bias",
            PredictorSpec::Gshare { .. } => "gshare",
            PredictorSpec::Local { .. } => "local",
            PredictorSpec::Mlbtb { .. } => "mlbtb",
        }
    }

    /// The fully resolved configuration as a canonical JSON object
    /// (fixed field order — this is what the cache key hashes).
    #[must_use]
    pub fn canonical(&self) -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = vec![("kind", self.kind().into())];
        match *self {
            PredictorSpec::Sbtb { entries, ways } => {
                fields.push(("entries", entries.into()));
                fields.push(("ways", ways.into()));
            }
            PredictorSpec::Cbtb {
                entries,
                ways,
                counter_bits,
                threshold,
                strict_greater,
            } => {
                fields.push(("entries", entries.into()));
                fields.push(("ways", ways.into()));
                fields.push(("counter_bits", u64::from(counter_bits).into()));
                fields.push(("threshold", u64::from(threshold).into()));
                fields.push(("strict_greater", strict_greater.into()));
            }
            PredictorSpec::Gshare {
                table_bits,
                history_bits,
            }
            | PredictorSpec::Local {
                table_bits,
                history_bits,
            } => {
                fields.push(("table_bits", table_bits.into()));
                fields.push(("history_bits", history_bits.into()));
            }
            PredictorSpec::Mlbtb {
                l1_entries,
                l1_ways,
                l1_latency,
                l2_entries,
                l2_ways,
                l2_latency,
                staged,
                counter_bits,
                threshold,
            } => {
                fields.push(("l1_entries", l1_entries.into()));
                fields.push(("l1_ways", l1_ways.into()));
                fields.push(("l1_latency", l1_latency.into()));
                fields.push(("l2_entries", l2_entries.into()));
                fields.push(("l2_ways", l2_ways.into()));
                fields.push(("l2_latency", l2_latency.into()));
                fields.push(("policy", if staged { "staged" } else { "l1" }.into()));
                fields.push(("counter_bits", u64::from(counter_bits).into()));
                fields.push(("threshold", u64::from(threshold).into()));
            }
            _ => {}
        }
        JsonValue::obj(fields)
    }

    /// Construct the predictor this spec describes.
    #[must_use]
    pub fn build(&self) -> Box<dyn BranchPredictor> {
        match *self {
            PredictorSpec::Sbtb { entries, ways } => {
                Box::new(Sbtb::new(SbtbConfig { entries, ways }))
            }
            PredictorSpec::Cbtb {
                entries,
                ways,
                counter_bits,
                threshold,
                strict_greater,
            } => Box::new(Cbtb::new(CbtbConfig {
                entries,
                ways,
                counter_bits,
                threshold,
                strict_greater,
            })),
            PredictorSpec::AlwaysTaken => Box::new(AlwaysTaken),
            PredictorSpec::AlwaysNotTaken => Box::new(AlwaysNotTaken),
            PredictorSpec::Btfn => Box::new(BackwardTakenForwardNot),
            PredictorSpec::OpcodeBias => Box::new(OpcodeBias::heuristic()),
            PredictorSpec::Gshare {
                table_bits,
                history_bits,
            } => Box::new(Gshare::new(table_bits, history_bits)),
            PredictorSpec::Local {
                table_bits,
                history_bits,
            } => Box::new(LocalHistory::new(table_bits, history_bits)),
            PredictorSpec::Mlbtb {
                l1_entries,
                l1_ways,
                l1_latency,
                l2_entries,
                l2_ways,
                l2_latency,
                staged,
                counter_bits,
                threshold,
            } => Box::new(MlBtb::new(MlBtbConfig {
                levels: vec![
                    MlBtbLevel {
                        entries: l1_entries,
                        ways: l1_ways,
                        latency: l1_latency,
                    },
                    MlBtbLevel {
                        entries: l2_entries,
                        ways: l2_ways,
                        latency: l2_latency,
                    },
                ],
                policy: if staged {
                    FillPolicy::Staged
                } else {
                    FillPolicy::L1
                },
                counter_bits,
                threshold,
            })),
        }
    }
}

/// A parsed, fully resolved `/v1/sweep` request.
#[derive(Clone, Debug)]
pub struct SweepRequest {
    /// The benchmark to sweep over.
    pub bench: &'static Benchmark,
    /// Input scale (defaults to the daemon's).
    pub scale: Scale,
    /// Input seed (defaults to the daemon's).
    pub seed: u64,
    /// Predictor configurations, in request order.
    pub predictors: Vec<PredictorSpec>,
    /// Return-address-stack depths, in request order.
    pub ras: Vec<usize>,
    /// Client deadline override in milliseconds.
    pub deadline_ms: Option<u64>,
}

fn parse_scale(v: &JsonValue) -> Result<Scale, ApiError> {
    match v.as_str() {
        Some("test") => Ok(Scale::Test),
        Some("small") => Ok(Scale::Small),
        Some("paper") => Ok(Scale::Paper),
        _ => Err(ApiError::BadRequest(
            "`scale` must be \"test\", \"small\", or \"paper\"".into(),
        )),
    }
}

impl SweepRequest {
    /// Parse a request body against the daemon's base configuration.
    ///
    /// # Errors
    /// [`ApiError::BadRequest`] for malformed JSON or out-of-range
    /// fields; [`ApiError::UnknownBenchmark`] for a benchmark not in
    /// the suite.
    pub fn parse(body: &[u8], base: &ExperimentConfig) -> Result<Self, ApiError> {
        let text = std::str::from_utf8(body)
            .map_err(|_| ApiError::BadRequest("body is not UTF-8".into()))?;
        let v = json::parse(text).map_err(|e| ApiError::BadRequest(format!("bad JSON: {e}")))?;

        let name = v
            .get("bench")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ApiError::BadRequest("request needs a `bench` name".into()))?;
        let bench = benchmark(name).ok_or_else(|| ApiError::UnknownBenchmark(name.to_string()))?;

        let scale = match v.get("scale") {
            None => base.scale,
            Some(s) => parse_scale(s)?,
        };
        let seed = match v.get("seed") {
            None => base.seed,
            Some(s) => s
                .as_int()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| {
                    ApiError::BadRequest("`seed` must be a non-negative integer".into())
                })?,
        };

        let predictors = v
            .get("predictors")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| ApiError::BadRequest("request needs a `predictors` array".into()))?
            .iter()
            .map(PredictorSpec::parse)
            .collect::<Result<Vec<_>, _>>()?;
        if predictors.is_empty() {
            return Err(ApiError::BadRequest(
                "`predictors` must not be empty".into(),
            ));
        }
        if predictors.len() > MAX_PREDICTORS {
            return Err(ApiError::BadRequest(format!(
                "at most {MAX_PREDICTORS} predictors per request"
            )));
        }

        let ras = match v.get("ras") {
            None => Vec::new(),
            Some(arr) => arr
                .as_arr()
                .ok_or_else(|| ApiError::BadRequest("`ras` must be an array of depths".into()))?
                .iter()
                .map(|d| {
                    d.as_int()
                        .and_then(|i| usize::try_from(i).ok())
                        .filter(|n| (1..=65_536).contains(n))
                        .ok_or_else(|| {
                            ApiError::BadRequest("`ras` depths must be in 1..=65536".into())
                        })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        if ras.len() > MAX_RAS_DEPTHS {
            return Err(ApiError::BadRequest(format!(
                "at most {MAX_RAS_DEPTHS} RAS depths per request"
            )));
        }

        let deadline_ms = match v.get("deadline_ms") {
            None => None,
            Some(d) => Some(
                d.as_int()
                    .and_then(|i| u64::try_from(i).ok())
                    .filter(|ms| (1..=600_000).contains(ms))
                    .ok_or_else(|| {
                        ApiError::BadRequest("`deadline_ms` must be in 1..=600000".into())
                    })?,
            ),
        };

        Ok(SweepRequest {
            bench,
            scale,
            seed,
            predictors,
            ras,
            deadline_ms,
        })
    }

    /// The benchmark source's content hash (part of the result key, so
    /// a source edit can never serve a stale cached result).
    #[must_use]
    pub fn program_hash(&self) -> u64 {
        hash_bytes(self.bench.source.as_bytes())
    }

    /// How many sweep points this request scores (the unit admission
    /// control's per-point cost EWMA is denominated in).
    #[must_use]
    pub fn points(&self) -> u64 {
        (self.predictors.len() + self.ras.len()) as u64
    }

    /// The canonical identity of this request:
    /// `(bench, program hash, scale, seed, predictor configs, ras)`
    /// rendered as one compact JSON string. Equal requests — however
    /// their JSON was originally spelled — canonicalize identically,
    /// which is what the LRU cache and the coalescing map key on.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        JsonValue::obj(vec![
            ("bench", self.bench.name.into()),
            (
                "program_hash",
                format!("{:016x}", self.program_hash()).into(),
            ),
            ("scale", scale_name(self.scale).into()),
            ("seed", self.seed.into()),
            (
                "predictors",
                JsonValue::Arr(
                    self.predictors
                        .iter()
                        .map(PredictorSpec::canonical)
                        .collect(),
                ),
            ),
            (
                "ras",
                JsonValue::Arr(self.ras.iter().map(|&d| d.into()).collect()),
            ),
        ])
        .to_json()
    }
}

/// Evaluate `req` through one [`SweepBatch`] pass and render the
/// response body.
///
/// # Errors
/// [`ApiError::Internal`] when the capture/replay pipeline fails.
pub fn evaluate(req: &SweepRequest, base: &ExperimentConfig) -> Result<Arc<str>, ApiError> {
    evaluate_traced(req, base, None)
}

/// [`evaluate`], with the batch's capture/score phases and the final
/// render recorded as child spans under `parent` (see
/// [`branchlab_telemetry::trace`]). With `parent` `None` this is
/// exactly [`evaluate`].
///
/// # Errors
/// [`ApiError::Internal`] when the capture/replay pipeline fails.
pub fn evaluate_traced(
    req: &SweepRequest,
    base: &ExperimentConfig,
    parent: Option<&SpanLink>,
) -> Result<Arc<str>, ApiError> {
    let config = ExperimentConfig {
        scale: req.scale,
        seed: req.seed,
        ..base.clone()
    };
    let mut batch = SweepBatch::new(req.bench, &config);
    if let Some(link) = parent {
        batch.set_trace_parent(link.clone());
    }
    let preds = batch.eval(req.predictors.iter().map(PredictorSpec::build).collect());
    let ras = (!req.ras.is_empty()).then(|| batch.ras(&req.ras));
    let results = batch.run().map_err(|e| ApiError::Internal(e.to_string()))?;
    let ras_stats = ras.map(|t| results.ras(t)).unwrap_or(&[]);
    let mut render_span = parent.map(|p| p.child("render"));
    let body = render_sweep_response(req, results.stats(preds), ras_stats);
    if let Some(s) = render_span.as_mut() {
        s.add_work(body.len() as u64);
    }
    Ok(body)
}

/// Render the response body for a scored sweep. Pure and
/// deterministic: byte-identical output for identical inputs, which
/// makes computed, coalesced, and cached responses indistinguishable
/// on the wire (provenance travels in the `X-Branchlab-Source`
/// header instead).
#[must_use]
pub fn render_sweep_response(
    req: &SweepRequest,
    stats: &[PredStats],
    ras: &[ReturnAddressStack],
) -> Arc<str> {
    let predictors = req
        .predictors
        .iter()
        .zip(stats)
        .map(|(spec, s)| {
            JsonValue::obj(vec![
                ("kind", spec.kind().into()),
                ("config", spec.canonical()),
                ("events", s.events.into()),
                ("correct", s.correct.into()),
                ("accuracy", s.accuracy().into()),
                ("cond_events", s.cond_events.into()),
                ("cond_correct", s.cond_correct.into()),
                ("cond_accuracy", s.cond_accuracy().into()),
                ("btb_lookups", s.btb_lookups.into()),
                ("btb_misses", s.btb_misses.into()),
                ("miss_ratio", s.miss_ratio().into()),
            ])
        })
        .collect();
    let ras = ras
        .iter()
        .map(|r| {
            JsonValue::obj(vec![
                ("depth", r.depth().into()),
                ("returns", r.returns.into()),
                ("correct", r.correct.into()),
                ("accuracy", r.accuracy().into()),
                ("overflows", r.overflows.into()),
                ("underflows", r.underflows.into()),
            ])
        })
        .collect();
    let body = JsonValue::obj(vec![
        ("bench", req.bench.name.into()),
        ("scale", scale_name(req.scale).into()),
        ("seed", req.seed.into()),
        (
            "program_hash",
            format!("{:016x}", req.program_hash()).into(),
        ),
        ("predictors", JsonValue::Arr(predictors)),
        ("ras", JsonValue::Arr(ras)),
    ])
    .to_json();
    Arc::from(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ExperimentConfig {
        ExperimentConfig::test()
    }

    #[test]
    fn parse_applies_defaults_and_canonicalizes() {
        let body = br#"{"bench": "wc", "predictors": [{"kind": "cbtb"}, {"kind": "btfn"}]}"#;
        let req = SweepRequest::parse(body, &base()).unwrap();
        assert_eq!(req.bench.name, "wc");
        assert_eq!(req.scale, Scale::Test);
        assert_eq!(req.seed, 1989);
        assert_eq!(
            req.predictors[0],
            PredictorSpec::Cbtb {
                entries: 256,
                ways: 256,
                counter_bits: 2,
                threshold: 2,
                strict_greater: false,
            }
        );
        // Spelling differences disappear in the canonical key.
        let spelled = br#"{"predictors": [{"entries":256,"kind":"cbtb"},{"kind":"btfn"}],
                           "seed": 1989, "scale": "test", "bench": "wc"}"#;
        let other = SweepRequest::parse(spelled, &base()).unwrap();
        assert_eq!(req.canonical_key(), other.canonical_key());
    }

    #[test]
    fn parse_mlbtb_defaults_and_builds() {
        let body = br#"{"bench": "dispatch", "predictors": [{"kind": "mlbtb"}]}"#;
        let req = SweepRequest::parse(body, &base()).unwrap();
        assert_eq!(req.bench.name, "dispatch");
        assert_eq!(
            req.predictors[0],
            PredictorSpec::Mlbtb {
                l1_entries: 64,
                l1_ways: 4,
                l1_latency: 0,
                l2_entries: 2048,
                l2_ways: 8,
                l2_latency: 2,
                staged: false,
                counter_bits: 2,
                threshold: 2,
            }
        );
        assert_eq!(req.predictors[0].kind(), "mlbtb");
        assert_eq!(req.predictors[0].build().name(), "MLBTB");
        // The policy spelling participates in the canonical key.
        let canon = req.predictors[0].canonical().to_json();
        assert!(canon.contains("\"policy\":\"l1\""), "{canon}");
        let staged = SweepRequest::parse(
            br#"{"bench": "dispatch", "predictors": [{"kind": "mlbtb", "policy": "staged"}]}"#,
            &base(),
        )
        .unwrap();
        assert_ne!(req.canonical_key(), staged.canonical_key());
    }

    #[test]
    fn parse_rejects_garbage() {
        let cases: &[&[u8]] = &[
            b"not json",
            br#"{"predictors": [{"kind": "sbtb"}]}"#, // no bench
            br#"{"bench": "wc"}"#,                    // no predictors
            br#"{"bench": "wc", "predictors": []}"#,  // empty
            br#"{"bench": "wc", "predictors": [{"kind": "quantum"}]}"#, // unknown kind
            br#"{"bench": "wc", "predictors": [{"kind": "sbtb", "entries": 0}]}"#,
            br#"{"bench": "wc", "predictors": [{"kind": "sbtb"}], "ras": [0]}"#,
            br#"{"bench": "wc", "predictors": [{"kind": "sbtb"}], "deadline_ms": 0}"#,
            br#"{"bench": "wc", "predictors": [{"kind": "cbtb", "threshold": 4}]}"#,
            br#"{"bench": "wc", "predictors": [{"kind": "mlbtb", "policy": "lifo"}]}"#,
            br#"{"bench": "wc", "predictors": [{"kind": "mlbtb", "l1_entries": 24}]}"#,
            br#"{"bench": "wc", "predictors": [{"kind": "mlbtb", "threshold": 4}]}"#,
        ];
        for body in cases {
            let err = SweepRequest::parse(body, &base()).unwrap_err();
            assert!(
                matches!(err, ApiError::BadRequest(_)),
                "{:?} for {:?}",
                err,
                String::from_utf8_lossy(body)
            );
        }
        let err = SweepRequest::parse(
            br#"{"bench": "no-such", "predictors": [{"kind": "sbtb"}]}"#,
            &base(),
        )
        .unwrap_err();
        assert!(matches!(err, ApiError::UnknownBenchmark(_)), "{err:?}");
    }

    #[test]
    fn key_distinguishes_every_dimension() {
        let parse = |body: &[u8]| SweepRequest::parse(body, &base()).unwrap().canonical_key();
        let baseline = parse(br#"{"bench": "wc", "predictors": [{"kind": "sbtb"}]}"#);
        for variant in [
            br#"{"bench": "cmp", "predictors": [{"kind": "sbtb"}]}"#.as_slice(),
            br#"{"bench": "wc", "seed": 7, "predictors": [{"kind": "sbtb"}]}"#.as_slice(),
            br#"{"bench": "wc", "scale": "small", "predictors": [{"kind": "sbtb"}]}"#.as_slice(),
            br#"{"bench": "wc", "predictors": [{"kind": "sbtb", "entries": 128}]}"#.as_slice(),
            br#"{"bench": "wc", "predictors": [{"kind": "sbtb"}], "ras": [8]}"#.as_slice(),
        ] {
            assert_ne!(baseline, parse(variant));
        }
    }

    #[test]
    fn evaluate_is_deterministic_to_the_byte() {
        let body = br#"{"bench": "wc",
                        "predictors": [{"kind": "sbtb", "entries": 64},
                                       {"kind": "always_taken"}],
                        "ras": [4, 64]}"#;
        let req = SweepRequest::parse(body, &base()).unwrap();
        let a = evaluate(&req, &base()).unwrap();
        let b = evaluate(&req, &base()).unwrap();
        assert_eq!(a, b);
        let v = json::parse(&a).unwrap();
        assert_eq!(v.get("bench").and_then(JsonValue::as_str), Some("wc"));
        let preds = v.get("predictors").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(preds.len(), 2);
        assert!(preds[0].get("events").and_then(JsonValue::as_int).unwrap() > 0);
        assert_eq!(v.get("ras").and_then(JsonValue::as_arr).unwrap().len(), 2);
    }
}
