//! The daemon's metric handles, registered once in a
//! [`MetricsRegistry`] and shared across connection handlers and pool
//! workers. `GET /metrics` renders the registry (merged with the
//! process-wide `suite.trace.*` / `suite.sweep.parallel.*` counters
//! from `crates/experiments`) as Prometheus exposition text.

use std::sync::Arc;

use branchlab_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

/// Latency histogram upper bounds in microseconds, from 100µs to 10s.
/// Dense enough that `Snapshot::histogram_quantile` gives usable
/// p50/p99 estimates at both cache-hit and full-sweep latencies.
pub const LATENCY_BOUNDS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// Every server metric, by handle.
pub struct ServerMetrics {
    /// The registry the handles live in (scraped by `/metrics`).
    pub registry: Arc<MetricsRegistry>,
    /// HTTP requests received (any endpoint).
    pub requests: Arc<Counter>,
    /// Sweep requests received.
    pub sweep_requests: Arc<Counter>,
    /// Responses by coarse status class.
    pub responses_2xx: Arc<Counter>,
    /// 4xx responses.
    pub responses_4xx: Arc<Counter>,
    /// 5xx responses (503/504 included).
    pub responses_5xx: Arc<Counter>,
    /// Live sweep queue depth.
    pub queue_depth: Arc<Gauge>,
    /// Accept-to-worker-pickup wait in microseconds, so latency p99
    /// decomposes into queue wait vs. compute.
    pub queue_wait_us: Arc<Histogram>,
    /// Sweeps shed with 503 because the queue was full.
    pub queue_rejected: Arc<Counter>,
    /// Sweeps shed up front because the projected queue wait exceeded
    /// their deadline.
    pub admission_rejected: Arc<Counter>,
    /// Queue-wait projection made per admission decision, µs.
    pub admission_projected_wait_us: Arc<Histogram>,
    /// Sweeps answered by joining an identical in-flight computation.
    pub coalesce_hits: Arc<Counter>,
    /// Sweeps answered from the LRU result cache.
    pub cache_hits: Arc<Counter>,
    /// Sweeps that missed the cache.
    pub cache_misses: Arc<Counter>,
    /// Cached bodies that failed hash validation on read (evicted and
    /// recomputed, never served).
    pub cache_corrupt: Arc<Counter>,
    /// Requests that hit their deadline before a result was ready.
    pub deadline_expired: Arc<Counter>,
    /// Requests slower than the configured `--slow-ms` threshold.
    pub slow_requests: Arc<Counter>,
    /// Sweeps actually computed (one replay pass each).
    pub sweeps_computed: Arc<Counter>,
    /// End-to-end request latency in microseconds.
    pub latency_us: Arc<Histogram>,
    /// Currently open client connections.
    pub connections_active: Arc<Gauge>,
    /// Connections accepted over the daemon's lifetime.
    pub connections_total: Arc<Counter>,
    /// 1 once the warmup pass has made every suite trace resident.
    pub ready: Arc<Gauge>,
    /// Benchmarks warmed so far.
    pub warm_benches: Arc<Counter>,
    /// Trace events made resident by warmup.
    pub warm_events: Arc<Counter>,
    /// Pool workers respawned after a panicking job.
    pub worker_restarts: Arc<Counter>,
    /// Spill snapshots published.
    pub spill_snapshots: Arc<Counter>,
    /// Spill snapshot writes that failed (retried next interval).
    pub spill_errors: Arc<Counter>,
    /// Cache entries restored from the spill snapshot at boot.
    pub spill_restored: Arc<Counter>,
    /// Snapshot records dropped at boot (torn/stale/corrupt).
    pub spill_skipped: Arc<Counter>,
    /// Entries in the most recent spill snapshot.
    pub spill_entries: Arc<Gauge>,
}

impl ServerMetrics {
    /// Register every server metric in `registry`.
    #[must_use]
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        ServerMetrics {
            requests: registry.counter("server.requests"),
            sweep_requests: registry.counter("server.sweep.requests"),
            responses_2xx: registry.counter("server.responses.2xx"),
            responses_4xx: registry.counter("server.responses.4xx"),
            responses_5xx: registry.counter("server.responses.5xx"),
            queue_depth: registry.gauge("server.queue.depth"),
            queue_wait_us: registry.histogram("server.queue.wait_us", LATENCY_BOUNDS_US),
            queue_rejected: registry.counter("server.queue.rejected"),
            admission_rejected: registry.counter("server.admission.rejected"),
            admission_projected_wait_us: registry
                .histogram("server.admission.projected_wait_us", LATENCY_BOUNDS_US),
            coalesce_hits: registry.counter("server.coalesce.hits"),
            cache_hits: registry.counter("server.cache.hits"),
            cache_misses: registry.counter("server.cache.misses"),
            cache_corrupt: registry.counter("server.cache.corrupt"),
            deadline_expired: registry.counter("server.deadline.expired"),
            slow_requests: registry.counter("server.slow.requests"),
            sweeps_computed: registry.counter("server.sweeps.computed"),
            latency_us: registry.histogram("server.latency.us", LATENCY_BOUNDS_US),
            connections_active: registry.gauge("server.connections.active"),
            connections_total: registry.counter("server.connections.total"),
            ready: registry.gauge("server.ready"),
            warm_benches: registry.counter("server.warm.benches"),
            warm_events: registry.counter("server.warm.events"),
            worker_restarts: registry.counter("server.worker.restarts"),
            spill_snapshots: registry.counter("server.spill.snapshots"),
            spill_errors: registry.counter("server.spill.errors"),
            spill_restored: registry.counter("server.spill.restored"),
            spill_skipped: registry.counter("server.spill.skipped"),
            spill_entries: registry.gauge("server.spill.entries"),
            registry,
        }
    }

    /// Count one response with the given status.
    pub fn count_response(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.inc(),
            400..=499 => self.responses_4xx.inc(),
            _ => self.responses_5xx.inc(),
        }
    }
}
