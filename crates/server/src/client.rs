//! A tiny `std`-only HTTP/1.1 client for talking to `branchlabd`.
//!
//! Shared by the integration tests, the CI smoke check, and the
//! `serve_bench` load generator, so none of them need an external
//! HTTP dependency. Supports exactly what the daemon speaks: one
//! request/response at a time over a keep-alive connection, with
//! `Content-Length` bodies.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    addr: String,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        Ok(Client {
            reader: BufReader::new(stream),
            addr: addr.to_string(),
        })
    }

    /// The address this client is connected to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Issue `GET path`.
    ///
    /// # Errors
    /// Propagates transport and protocol errors.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// Issue `POST path` with a JSON body.
    ///
    /// # Errors
    /// Propagates transport and protocol errors.
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body.as_bytes()))
    }

    /// Issue a request with extra headers (e.g. `X-Branchlab-Trace-Id`
    /// to pin a request's trace id for later `/debug/traces/<id>`
    /// lookup).
    ///
    /// # Errors
    /// Propagates transport and protocol errors.
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            stream.write_all(body)?;
        }
        stream.flush()?;
        self.read_response()
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        self.request_with(method, path, &[], body)
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// One-shot convenience: connect, issue a single request, return the
/// response.
///
/// # Errors
/// Propagates connect, transport, and protocol errors.
pub fn one_shot(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    let mut client = Client::connect(addr)?;
    match (method, body) {
        ("GET", _) => client.get(path),
        ("POST", Some(body)) => client.post_json(path, body),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "unsupported method/body combination",
        )),
    }
}
