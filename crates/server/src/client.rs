//! A tiny `std`-only HTTP/1.1 client for talking to `branchlabd`.
//!
//! Shared by the integration tests, the CI smoke check, and the
//! `serve_bench` load generator, so none of them need an external
//! HTTP dependency. Supports exactly what the daemon speaks: one
//! request/response at a time over a keep-alive connection, with
//! `Content-Length` bodies.
//!
//! For crash-only serving the client carries the other half of the
//! contract: [`one_shot_with_retry`] retries transport failures and
//! `5xx` responses with seeded, jittered exponential backoff, honors
//! the server's `Retry-After` projection, and gives up when a total
//! retry *budget* of sleep time is spent — surfacing the last error
//! rather than hammering a daemon that is restarting or shedding load.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use branchlab_telemetry::Rng;

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    addr: String,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        Ok(Client {
            reader: BufReader::new(stream),
            addr: addr.to_string(),
        })
    }

    /// The address this client is connected to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Issue `GET path`.
    ///
    /// # Errors
    /// Propagates transport and protocol errors.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// Issue `POST path` with a JSON body.
    ///
    /// # Errors
    /// Propagates transport and protocol errors.
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body.as_bytes()))
    }

    /// Issue a request with extra headers (e.g. `X-Branchlab-Trace-Id`
    /// to pin a request's trace id for later `/debug/traces/<id>`
    /// lookup).
    ///
    /// # Errors
    /// Propagates transport and protocol errors.
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            stream.write_all(body)?;
        }
        stream.flush()?;
        self.read_response()
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        self.request_with(method, path, &[], body)
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// One-shot convenience: connect, issue a single request, return the
/// response.
///
/// # Errors
/// Propagates connect, transport, and protocol errors.
pub fn one_shot(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    let mut client = Client::connect(addr)?;
    match (method, body) {
        ("GET", _) => client.get(path),
        ("POST", Some(body)) => client.post_json(path, body),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "unsupported method/body combination",
        )),
    }
}

/// How [`one_shot_with_retry`] paces its attempts.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts
    /// total before the last outcome is surfaced).
    pub max_retries: u32,
    /// Backoff ceiling for the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Hard cap on any single backoff.
    pub max_backoff: Duration,
    /// Total sleep allowed across all retries; a wait that would
    /// exceed it ends the attempt loop and surfaces the last outcome.
    pub retry_budget: Duration,
    /// Seed for the jitter, so a test or replayed run backs off
    /// identically.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(2),
            retry_budget: Duration::from_secs(15),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The jittered exponential backoff for retry `attempt` (0-based):
    /// uniformly drawn from `[ceiling/2, ceiling)` where the ceiling
    /// doubles per attempt up to [`RetryPolicy::max_backoff`]. Pure
    /// and deterministic in `(seed, attempt)` — decorrelated jitter
    /// without wall-clock or global-RNG inputs.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base_us = u64::try_from(self.base_backoff.as_micros()).unwrap_or(u64::MAX);
        let max_us = u64::try_from(self.max_backoff.as_micros()).unwrap_or(u64::MAX);
        let ceiling_us = base_us
            .saturating_mul(1u64 << attempt.min(20))
            .min(max_us)
            .max(2);
        let low = ceiling_us / 2;
        let span = (ceiling_us - low).max(1);
        let mut rng =
            Rng::seed_from_u64(self.seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        Duration::from_micros(low + rng.next_u64() % span)
    }

    /// The actual wait before retry `attempt`: the jittered backoff,
    /// raised to the server's `Retry-After` when one was sent (the
    /// server's queue-wait projection beats the client's guess).
    #[must_use]
    pub fn retry_wait(&self, attempt: u32, retry_after_secs: Option<u64>) -> Duration {
        let jittered = self.backoff(attempt);
        match retry_after_secs {
            Some(secs) => jittered.max(Duration::from_secs(secs)),
            None => jittered,
        }
    }
}

/// Seconds from a response's `Retry-After` header, if present.
fn retry_after(resp: &ClientResponse) -> Option<u64> {
    resp.header("retry-after").and_then(|v| v.parse().ok())
}

/// [`one_shot`] with crash-only retry semantics: transport errors
/// (daemon restarting, connection refused) and `5xx` responses
/// (overload shed, deadline expiry, a chaos-killed worker) retry on a
/// fresh connection with jittered backoff; anything else returns
/// immediately. When retries or the sleep budget run out, the *last*
/// outcome — response or transport error — is surfaced unchanged.
///
/// # Errors
/// The final attempt's transport error, when every attempt failed at
/// the transport layer.
pub fn one_shot_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
) -> io::Result<ClientResponse> {
    let mut slept = Duration::ZERO;
    let mut attempt = 0u32;
    loop {
        let outcome = one_shot(addr, method, path, body);
        let hint = match &outcome {
            Ok(resp) if resp.status < 500 => return outcome,
            Ok(resp) => retry_after(resp),
            Err(_) => None,
        };
        if attempt >= policy.max_retries {
            return outcome;
        }
        let wait = policy.retry_wait(attempt, hint);
        if slept + wait > policy.retry_budget {
            return outcome;
        }
        std::thread::sleep(wait);
        slept += wait;
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn backoff_jitter_stays_in_bounds_and_is_deterministic() {
        let policy = RetryPolicy::default();
        for attempt in 0..10 {
            let base_us = u64::try_from(policy.base_backoff.as_micros()).unwrap();
            let max_us = u64::try_from(policy.max_backoff.as_micros()).unwrap();
            let ceiling = base_us.saturating_mul(1 << attempt).min(max_us);
            let got = u64::try_from(policy.backoff(attempt).as_micros()).unwrap();
            assert!(
                got >= ceiling / 2,
                "attempt {attempt}: {got} < {}",
                ceiling / 2
            );
            assert!(got < ceiling, "attempt {attempt}: {got} >= {ceiling}");
            // Same (seed, attempt) → same wait; a different seed moves it.
            assert_eq!(policy.backoff(attempt), policy.backoff(attempt));
        }
        let reseeded = RetryPolicy {
            seed: 7,
            ..RetryPolicy::default()
        };
        assert!((0..10).any(|a| reseeded.backoff(a) != RetryPolicy::default().backoff(a)));
    }

    #[test]
    fn retry_wait_honors_retry_after() {
        let policy = RetryPolicy::default();
        // The jittered backoff for attempt 0 is well under a second,
        // so a 2s Retry-After must win...
        assert_eq!(
            policy.retry_wait(0, Some(2)),
            Duration::from_secs(2),
            "server projection should override a smaller jitter"
        );
        // ...and without the header the jitter stands.
        assert_eq!(policy.retry_wait(0, None), policy.backoff(0));
        // A huge jitter is not *lowered* by a small Retry-After.
        let slow = RetryPolicy {
            base_backoff: Duration::from_secs(8),
            max_backoff: Duration::from_secs(8),
            ..RetryPolicy::default()
        };
        assert!(slow.retry_wait(0, Some(1)) >= Duration::from_secs(4));
    }

    /// A throwaway server answering each connection with one canned
    /// response from `script` (the last entry repeats).
    fn canned_server(script: Vec<&'static str>) -> (String, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hits = Arc::new(AtomicUsize::new(0));
        let thread_hits = Arc::clone(&hits);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                let n = thread_hits.fetch_add(1, Ordering::SeqCst);
                let resp = script[n.min(script.len() - 1)];
                // Swallow the request head; enough for a test double.
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let _ = stream.write_all(resp.as_bytes());
            }
        });
        (addr, hits)
    }

    fn fast_policy(retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries: retries,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(4),
            retry_budget: Duration::from_secs(5),
            seed: 1,
        }
    }

    #[test]
    fn five_hundreds_retry_until_success() {
        let (addr, hits) = canned_server(vec![
            "HTTP/1.1 500 Internal Server Error\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok",
        ]);
        let resp = one_shot_with_retry(&addr, "GET", "/x", None, &fast_policy(4)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text(), "ok");
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn exhausted_budget_surfaces_the_last_response() {
        // Every attempt gets a 503 telling the client to wait 1s, but
        // the budget only allows ~10ms of total sleep: exactly one
        // attempt happens and its 503 comes back unchanged.
        let (addr, hits) = canned_server(vec![
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        ]);
        let policy = RetryPolicy {
            retry_budget: Duration::from_millis(10),
            ..fast_policy(8)
        };
        let resp = one_shot_with_retry(&addr, "GET", "/x", None, &policy).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn exhausted_retries_surface_the_last_transport_error() {
        // Bind a port, then drop the listener: connects now fail.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let err = one_shot_with_retry(&addr, "GET", "/x", None, &fast_policy(2)).unwrap_err();
        // The last error is a real transport error, not a synthetic
        // "retries exhausted" wrapper.
        assert_ne!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn non_retryable_statuses_return_immediately() {
        let (addr, hits) = canned_server(vec![
            "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        ]);
        let resp = one_shot_with_retry(&addr, "GET", "/x", None, &fast_policy(4)).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
