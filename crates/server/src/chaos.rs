//! Server-side deterministic chaos injection.
//!
//! The experiment harness already proves fault handling offline with
//! [`FaultInjector`]; this module promotes the same seeded-decision
//! scheme into the serving path. Four fault classes, each behind its
//! own `--chaos-*` rate, each exercising a different recovery
//! mechanism:
//!
//! | site            | injected trouble            | what must absorb it            |
//! |-----------------|-----------------------------|--------------------------------|
//! | `worker`        | panic outside the sweep's own `catch_unwind` | pool worker restart (`server.worker.restarts`), slot drop-guard → `500` |
//! | `compute`       | sleep before the sweep      | deadlines / admission          |
//! | `cache_read`    | bit-flip in a cached body   | LRU hash validation → recompute (`server.cache.corrupt`) |
//! | `spill_write`   | snapshot write failure      | best-effort spill, retried next interval (`server.spill.errors`) |
//!
//! Decisions are pure hashes of `(seed, site, sequence number, lane)`
//! via [`FaultInjector::draw`], so a chaos run at a fixed seed injects
//! the same fault pattern every time requests arrive in the same
//! order — which is how `tests/chaos.rs` and the CI chaos smoke can
//! assert exact recovery behavior. Responses stay byte-identical to a
//! fault-free run no matter what fires: every class either delays,
//! is detected and recomputed, or costs one request a `500` that a
//! retry serves correctly.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use branchlab_experiments::fault::FIRST_CUSTOM_LANE;
use branchlab_experiments::{FaultConfig, FaultInjector};

/// Chaos rates, one per server fault class (all zero by default).
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for the decision hash.
    pub seed: u64,
    /// Probability a sweep's worker job panics before the sweep's own
    /// panic isolation can catch it.
    pub worker_panic_rate: f64,
    /// Probability a sweep computation sleeps for
    /// [`ChaosConfig::delay`] first.
    pub slow_compute_rate: f64,
    /// Sleep injected by the slow-compute lane.
    pub delay: Duration,
    /// Probability a cache read observes a corrupted body.
    pub cache_corrupt_rate: f64,
    /// Probability a spill snapshot write fails.
    pub spill_fail_rate: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0x000C_4A05,
            worker_panic_rate: 0.0,
            slow_compute_rate: 0.0,
            delay: Duration::from_millis(50),
            cache_corrupt_rate: 0.0,
            spill_fail_rate: 0.0,
        }
    }
}

impl ChaosConfig {
    /// `true` when any fault class has a nonzero rate.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.worker_panic_rate > 0.0
            || self.slow_compute_rate > 0.0
            || self.cache_corrupt_rate > 0.0
            || self.spill_fail_rate > 0.0
    }
}

/// Custom [`FaultInjector::draw`] lanes, one per server fault class.
mod lane {
    use super::FIRST_CUSTOM_LANE;
    pub const WORKER_PANIC: u64 = FIRST_CUSTOM_LANE;
    pub const SLOW_COMPUTE: u64 = FIRST_CUSTOM_LANE + 1;
    pub const CACHE_CORRUPT: u64 = FIRST_CUSTOM_LANE + 2;
    pub const SPILL_FAIL: u64 = FIRST_CUSTOM_LANE + 3;
}

/// The daemon's chaos engine: per-site sequence counters feeding the
/// deterministic draw, so each fault class sees a stable decision
/// stream independent of how the classes interleave.
pub struct Chaos {
    cfg: ChaosConfig,
    worker_seq: AtomicU32,
    compute_seq: AtomicU32,
    cache_seq: AtomicU32,
    spill_seq: AtomicU32,
}

impl Chaos {
    /// A chaos engine for `cfg` (free no-ops when nothing is enabled).
    #[must_use]
    pub fn new(cfg: ChaosConfig) -> Self {
        Chaos {
            cfg,
            worker_seq: AtomicU32::new(0),
            compute_seq: AtomicU32::new(0),
            cache_seq: AtomicU32::new(0),
            spill_seq: AtomicU32::new(0),
        }
    }

    /// Is any fault class armed?
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    fn draw(&self, site: &'static str, seq: &AtomicU32, lane: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let attempt = seq.fetch_add(1, Ordering::SeqCst);
        FaultInjector::new(
            &FaultConfig {
                seed: self.cfg.seed,
                ..FaultConfig::default()
            },
            "server",
            attempt,
        )
        .draw(site, lane, rate)
    }

    /// Should this worker job panic? (Trips *outside* the sweep's own
    /// `catch_unwind`, so the pool's self-healing path is exercised.)
    #[must_use]
    pub fn worker_panic(&self) -> bool {
        self.draw(
            "worker",
            &self.worker_seq,
            lane::WORKER_PANIC,
            self.cfg.worker_panic_rate,
        )
    }

    /// Sleep to inject before this sweep's compute, if the slow lane
    /// fires.
    #[must_use]
    pub fn slow_compute(&self) -> Option<Duration> {
        self.draw(
            "compute",
            &self.compute_seq,
            lane::SLOW_COMPUTE,
            self.cfg.slow_compute_rate,
        )
        .then_some(self.cfg.delay)
    }

    /// Should this cache read observe a corrupted body?
    #[must_use]
    pub fn corrupt_cache_read(&self) -> bool {
        self.draw(
            "cache_read",
            &self.cache_seq,
            lane::CACHE_CORRUPT,
            self.cfg.cache_corrupt_rate,
        )
    }

    /// Should this spill snapshot write fail?
    #[must_use]
    pub fn fail_spill_write(&self) -> bool {
        self.draw(
            "spill_write",
            &self.spill_seq,
            lane::SPILL_FAIL,
            self.cfg.spill_fail_rate,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_chaos_never_fires_and_burns_no_sequence() {
        let chaos = Chaos::new(ChaosConfig::default());
        assert!(!chaos.enabled());
        for _ in 0..50 {
            assert!(!chaos.worker_panic());
            assert!(chaos.slow_compute().is_none());
            assert!(!chaos.corrupt_cache_read());
            assert!(!chaos.fail_spill_write());
        }
        assert_eq!(chaos.worker_seq.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn rate_one_always_fires() {
        let chaos = Chaos::new(ChaosConfig {
            worker_panic_rate: 1.0,
            cache_corrupt_rate: 1.0,
            ..ChaosConfig::default()
        });
        assert!(chaos.enabled());
        for _ in 0..10 {
            assert!(chaos.worker_panic());
            assert!(chaos.corrupt_cache_read());
        }
    }

    #[test]
    fn decision_streams_are_deterministic_per_seed() {
        let stream = |seed| {
            let chaos = Chaos::new(ChaosConfig {
                seed,
                worker_panic_rate: 0.5,
                ..ChaosConfig::default()
            });
            (0..64).map(|_| chaos.worker_panic()).collect::<Vec<_>>()
        };
        assert_eq!(stream(1), stream(1));
        assert_ne!(stream(1), stream(2));
        // A 0.5 lane actually mixes both outcomes.
        assert!(stream(1).iter().any(|&b| b) && stream(1).iter().any(|&b| !b));
    }

    #[test]
    fn lanes_are_independent_sequences() {
        let chaos = Chaos::new(ChaosConfig {
            worker_panic_rate: 0.5,
            cache_corrupt_rate: 0.5,
            ..ChaosConfig::default()
        });
        // Interleaving cache draws must not perturb the worker stream.
        let solo = {
            let c = Chaos::new(ChaosConfig {
                worker_panic_rate: 0.5,
                cache_corrupt_rate: 0.5,
                ..ChaosConfig::default()
            });
            (0..32).map(|_| c.worker_panic()).collect::<Vec<_>>()
        };
        let interleaved: Vec<bool> = (0..32)
            .map(|_| {
                let _ = chaos.corrupt_cache_read();
                chaos.worker_panic()
            })
            .collect();
        assert_eq!(solo, interleaved);
    }
}
