//! Durable spill of the daemon's warm state, so a restart rejoins
//! warm instead of cold.
//!
//! Two things make a `branchlabd` warm: the resident benchmark traces
//! and the LRU response cache. Traces already have a checksummed,
//! atomic-rename on-disk format (`branchlab_trace::cache`), so the
//! spill directory simply points the experiment config's trace cache
//! at `<spill-dir>/traces/` and the existing load/save machinery does
//! the rest — a warm restart re-reads validated trace files instead of
//! re-capturing. This module adds the missing half: snapshotting the
//! response cache to `<spill-dir>/cache.jsonl`.
//!
//! The snapshot follows the `CheckpointFile` pattern the harness
//! proved offline: the full entry set is written to a sibling temp
//! file, fsynced, and renamed over the target, so the on-disk snapshot
//! atomically steps from one complete state to the next and a crash
//! mid-write can never destroy the previous snapshot. Each line is
//! self-validating JSON — a version tag and an FNV-1a hash over
//! `key NUL body` — and loading is deliberately forgiving: a torn
//! final record (the process died mid-write before the rename, or the
//! file predates a format change), a hash mismatch, or alien bytes
//! degrade to *skipping that record*, never to an error. The worst
//! corruption can do is a cold start.
//!
//! Entries are written least-recently-used first, so replaying them
//! into a fresh [`LruCache`](crate::lru::LruCache) in file order
//! reconstructs the recency order along with the contents.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use branchlab_telemetry::{json, JsonValue};
use branchlab_trace::hash_bytes;

/// Snapshot line format version; bumped on incompatible change, and
/// mismatched lines are skipped on load.
pub const SPILL_VERSION: u64 = 1;

/// The spill directory handle.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
}

/// What a snapshot load recovered (and what it had to drop).
#[derive(Debug, Default)]
pub struct SpillLoad {
    /// Validated `(canonical key, body)` entries, LRU order.
    pub entries: Vec<(String, Arc<str>)>,
    /// Records dropped for any reason (torn, stale version, hash
    /// mismatch, malformed JSON). Dropping is silent degradation by
    /// design; the count feeds `server.spill.skipped`.
    pub skipped: usize,
}

/// Integrity hash of one cache entry: FNV-1a over `key NUL body`, so
/// neither field can be swapped or truncated undetected.
fn entry_hash(key: &str, body: &str) -> u64 {
    let mut acc = Vec::with_capacity(key.len() + body.len() + 1);
    acc.extend_from_slice(key.as_bytes());
    acc.push(0);
    acc.extend_from_slice(body.as_bytes());
    hash_bytes(&acc)
}

impl SpillStore {
    /// Open (creating if needed) the spill directory and its `traces/`
    /// subdirectory.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        let store = SpillStore {
            dir: dir.to_path_buf(),
        };
        std::fs::create_dir_all(store.traces_dir())?;
        Ok(store)
    }

    /// Where warmed traces spill (handed to
    /// `ExperimentConfig::trace_cache_dir`, whose loader validates
    /// checksums and silently re-captures on damage).
    #[must_use]
    pub fn traces_dir(&self) -> PathBuf {
        self.dir.join("traces")
    }

    /// The response-cache snapshot file.
    #[must_use]
    pub fn cache_path(&self) -> PathBuf {
        self.dir.join("cache.jsonl")
    }

    /// Atomically publish a snapshot of `entries` (LRU order):
    /// write-all to a temp sibling, fsync, rename.
    ///
    /// # Errors
    /// Propagates write/fsync/rename errors; the previous snapshot is
    /// intact on error.
    pub fn save_cache(&self, entries: &[(String, Arc<str>)]) -> io::Result<()> {
        let path = self.cache_path();
        let tmp = path.with_extension("jsonl.tmp");
        {
            let file = std::fs::File::create(&tmp)?;
            let mut w = io::BufWriter::new(file);
            for (key, body) in entries {
                let line = JsonValue::obj(vec![
                    ("v", SPILL_VERSION.into()),
                    ("hash", format!("{:016x}", entry_hash(key, body)).into()),
                    ("key", key.as_str().into()),
                    ("body", JsonValue::from(&**body)),
                ])
                .to_json();
                writeln!(w, "{line}")?;
            }
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        // Make the rename itself durable where possible; failure here
        // only narrows the crash window, it doesn't corrupt anything.
        if let Ok(dir) = std::fs::File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    /// Load every validated entry from the snapshot. Never fails: a
    /// missing or unreadable file is an empty load, and damaged
    /// records are counted in [`SpillLoad::skipped`] and dropped.
    #[must_use]
    pub fn load_cache(&self) -> SpillLoad {
        let Ok(bytes) = std::fs::read(self.cache_path()) else {
            return SpillLoad::default();
        };
        // Lossy, so a snapshot damaged into invalid UTF-8 still
        // surfaces its lines as skip counts instead of vanishing.
        let text = String::from_utf8_lossy(&bytes);
        let mut load = SpillLoad::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_entry(line) {
                Some(entry) => load.entries.push(entry),
                None => load.skipped += 1,
            }
        }
        load
    }
}

/// Parse and validate one snapshot line; `None` drops it.
fn parse_entry(line: &str) -> Option<(String, Arc<str>)> {
    let v = json::parse(line).ok()?;
    if v.get("v")?.as_int()? != i64::try_from(SPILL_VERSION).ok()? {
        return None;
    }
    let key = v.get("key")?.as_str()?;
    let body = v.get("body")?.as_str()?;
    let stored = v.get("hash")?.as_str()?;
    let computed = format!("{:016x}", entry_hash(key, body));
    if stored != computed {
        return None;
    }
    Some((key.to_string(), Arc::from(body)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> (PathBuf, SpillStore) {
        let dir = std::env::temp_dir().join(format!("bl-spill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SpillStore::open(&dir).unwrap();
        (dir, store)
    }

    fn entries(n: usize) -> Vec<(String, Arc<str>)> {
        (0..n)
            .map(|i| {
                (
                    format!("{{\"bench\":\"wc\",\"seed\":{i}}}"),
                    Arc::from(format!(
                        "{{\"result\":{i},\"text\":\"a \\\"quoted\\\" body\"}}"
                    )),
                )
            })
            .collect()
    }

    #[test]
    fn snapshot_round_trips_in_order() {
        let (dir, store) = tmp_store("roundtrip");
        let want = entries(5);
        store.save_cache(&want).unwrap();
        let load = store.load_cache();
        assert_eq!(load.skipped, 0);
        assert_eq!(load.entries.len(), 5);
        for ((k, b), (wk, wb)) in load.entries.iter().zip(&want) {
            assert_eq!(k, wk);
            assert_eq!(b, wb);
        }
        assert!(!store.cache_path().with_extension("jsonl.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_an_empty_load() {
        let (dir, store) = tmp_store("missing");
        let load = store.load_cache();
        assert!(load.entries.is_empty());
        assert_eq!(load.skipped, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_degrades_to_fewer_entries_not_an_error() {
        // A kill mid-write tears the last record; everything before it
        // must still restore, and the tear must not error.
        let (dir, store) = tmp_store("torn");
        store.save_cache(&entries(4)).unwrap();
        let full = std::fs::read(store.cache_path()).unwrap();
        // Chop the file mid-final-record, byte by byte over a range,
        // so every tear offset in the last line is exercised.
        let last_line_start = full[..full.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        for cut in [last_line_start + 1, full.len() - 20, full.len() - 2] {
            std::fs::write(store.cache_path(), &full[..cut]).unwrap();
            let load = store.load_cache();
            assert_eq!(load.entries.len(), 3, "cut at {cut}");
            assert_eq!(load.skipped, 1, "cut at {cut}");
        }
        // Chopping at exactly the record boundary loses nothing.
        std::fs::write(store.cache_path(), &full[..last_line_start]).unwrap();
        let load = store.load_cache();
        assert_eq!((load.entries.len(), load.skipped), (3, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hash_mismatch_and_alien_lines_are_skipped() {
        let (dir, store) = tmp_store("alien");
        store.save_cache(&entries(2)).unwrap();
        let mut text = std::fs::read_to_string(store.cache_path()).unwrap();
        // A record whose body was tampered after hashing.
        text.push_str(
            "{\"v\": 1, \"hash\": \"0000000000000000\", \"key\": \"k\", \"body\": \"b\"}\n",
        );
        // A stale-version record and plain garbage.
        text.push_str("{\"v\": 999, \"hash\": \"x\", \"key\": \"k\", \"body\": \"b\"}\n");
        text.push_str("not json at all\n");
        std::fs::write(store.cache_path(), text).unwrap();
        let load = store.load_cache();
        assert_eq!(load.entries.len(), 2);
        assert_eq!(load.skipped, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_replaces_previous_snapshot_atomically() {
        let (dir, store) = tmp_store("replace");
        store.save_cache(&entries(3)).unwrap();
        store.save_cache(&entries(1)).unwrap();
        assert_eq!(store.load_cache().entries.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
