//! End-to-end tracing tests: boot the daemon, drive it over real
//! sockets, and verify the observability contract:
//!
//! 1. every response — 200s, 400s, protocol errors — echoes
//!    `X-Branchlab-Trace-Id` (client-pinned or server-assigned),
//! 2. a sweep's retained trace decomposes its wall-clock latency into
//!    parse / queue-wait / compute / render spans that nest under one
//!    root and sum within slack to the measured wall time,
//! 3. `/debug/traces`, `/debug/traces/<id>`, and `/debug/slow` serve
//!    the flight recorder, the slow log captures JSONL, and the
//!    Chrome-trace export validates.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use branchlab_server::client::{one_shot, Client};
use branchlab_server::{Server, ServerConfig};
use branchlab_telemetry::{json, validate_chrome_trace, JsonValue};

fn test_server(config: ServerConfig) -> branchlab_server::ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_cap: 8,
        warm_benches: vec!["wc".to_string()],
        ..config
    };
    Server::start(config).expect("start server")
}

fn wait_ready(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(resp) = one_shot(addr, "GET", "/readyz", None) {
            if resp.status == 200 {
                return;
            }
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(25));
    }
}

const SWEEP_BODY: &str = r#"{"bench": "wc",
    "predictors": [{"kind": "cbtb"},
                   {"kind": "sbtb", "entries": 128},
                   {"kind": "gshare", "table_bits": 10}],
    "ras": [2, 16]}"#;

/// Spans named `name` in a flat `spans` array.
fn spans_named<'a>(spans: &'a [JsonValue], name: &str) -> Vec<&'a JsonValue> {
    spans
        .iter()
        .filter(|s| s.get("name").and_then(|n| n.as_str()) == Some(name))
        .collect()
}

fn span_dur(span: &JsonValue) -> u64 {
    span.get("dur_us")
        .and_then(|d| d.as_int())
        .and_then(|d| u64::try_from(d).ok())
        .expect("span has dur_us")
}

#[test]
fn every_response_echoes_a_trace_id() {
    let mut server = test_server(ServerConfig::default());
    let addr = server.addr().to_string();
    wait_ready(&addr);

    // Client-pinned id: echoed back in canonical 16-hex-digit form.
    let mut client = Client::connect(&addr).unwrap();
    let resp = client
        .request_with(
            "GET",
            "/healthz",
            &[("X-Branchlab-Trace-Id", "deadbeef")],
            None,
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("x-branchlab-trace-id"),
        Some("00000000deadbeef")
    );

    // No client id: the server assigns one (16 hex digits, nonzero).
    let resp = one_shot(&addr, "GET", "/healthz", None).unwrap();
    let id = resp.header("x-branchlab-trace-id").expect("fresh id");
    assert_eq!(id.len(), 16);
    assert!(u64::from_str_radix(id, 16).unwrap() != 0);

    // Parse errors (400) still carry the client's id.
    let resp = client
        .request_with(
            "POST",
            "/v1/sweep",
            &[("X-Branchlab-Trace-Id", "badc0ffee")],
            Some(b"{not json"),
        )
        .unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(
        resp.header("x-branchlab-trace-id"),
        Some("0000000badc0ffee")
    );

    // A malformed id is ignored, not trusted: the server assigns.
    let resp = client
        .request_with(
            "GET",
            "/healthz",
            &[("X-Branchlab-Trace-Id", "not-hex!")],
            None,
        )
        .unwrap();
    let id = resp.header("x-branchlab-trace-id").expect("assigned id");
    assert_eq!(id.len(), 16);

    // Protocol errors (unparseable framing) get a fresh server id.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(b"GARBAGE\r\n\r\n").unwrap();
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    assert!(
        reply.to_ascii_lowercase().contains("x-branchlab-trace-id:"),
        "protocol-error 400 must still carry a trace id: {reply}"
    );

    server.shutdown_and_join();
}

#[test]
fn sweep_trace_decomposes_wall_time_into_phase_spans() {
    let mut server = test_server(ServerConfig::default());
    let addr = server.addr().to_string();
    wait_ready(&addr);

    let mut client = Client::connect(&addr).unwrap();
    let started = Instant::now();
    let resp = client
        .request_with(
            "POST",
            "/v1/sweep",
            &[("X-Branchlab-Trace-Id", "feedc0de")],
            Some(SWEEP_BODY.as_bytes()),
        )
        .unwrap();
    let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(
        resp.header("x-branchlab-trace-id"),
        Some("00000000feedc0de")
    );

    let debug = one_shot(&addr, "GET", "/debug/traces/00000000feedc0de", None).unwrap();
    assert_eq!(debug.status, 200, "{}", debug.text());
    let trace = json::parse(&debug.text()).unwrap();
    assert_eq!(
        trace.get("label").and_then(|l| l.as_str()),
        Some("POST /v1/sweep")
    );
    let spans = trace.get("spans").and_then(|s| s.as_arr()).unwrap();

    // The root request span, and the named phases under it.
    let root = {
        let roots = spans_named(spans, "request");
        assert_eq!(roots.len(), 1, "exactly one root span");
        roots[0]
    };
    assert!(matches!(root.get("parent"), Some(JsonValue::Null)));
    assert_eq!(root.get("status").and_then(|s| s.as_int()), Some(200));
    for name in [
        "parse",
        "cache_lookup",
        "admission",
        "queue_wait",
        "compute",
    ] {
        let found = spans_named(spans, name);
        assert_eq!(found.len(), 1, "span `{name}` recorded once");
        // All phases hang off the root request span.
        assert_eq!(
            found[0].get("parent").and_then(|p| p.as_int()),
            root.get("span").and_then(|s| s.as_int()),
            "span `{name}` must be a child of the root"
        );
    }
    // Inside compute: capture, scoring, and render. (Scoring is
    // `sweep_score` serially or per-shard `score_shard` spans when the
    // executor parallelises — accept either.)
    assert_eq!(spans_named(spans, "sweep_capture").len(), 1);
    assert!(
        !spans_named(spans, "sweep_score").is_empty()
            || !spans_named(spans, "score_shard").is_empty(),
        "scoring spans missing: {spans:?}"
    );
    let render = spans_named(spans, "render");
    assert_eq!(render.len(), 1);
    assert!(
        render[0].get("work").and_then(|w| w.as_int()).unwrap() > 0,
        "render span carries the body size as work"
    );

    // Latency decomposition: phases nest inside the root, the root
    // fits inside the measured wall time, and queue-wait + compute
    // cover the bulk of the root (the sweep dominates; per-span gaps
    // are scheduling noise).
    let root_dur = span_dur(root);
    let total = trace.get("total_us").and_then(|t| t.as_int()).unwrap();
    assert!(u64::try_from(total).unwrap() <= wall_us);
    assert!(root_dur <= wall_us, "root {root_dur}us vs wall {wall_us}us");
    let phase_sum: u64 = [
        "parse",
        "cache_lookup",
        "admission",
        "queue_wait",
        "compute",
    ]
    .iter()
    .map(|name| span_dur(spans_named(spans, name)[0]))
    .sum();
    assert!(
        phase_sum <= root_dur,
        "phases ({phase_sum}us) must nest within the root ({root_dur}us)"
    );
    let covered =
        span_dur(spans_named(spans, "queue_wait")[0]) + span_dur(spans_named(spans, "compute")[0]);
    assert!(
        covered.saturating_mul(2) >= root_dur,
        "queue_wait + compute ({covered}us) should cover most of the \
         root ({root_dur}us)"
    );

    // The nested tree view mirrors the flat list.
    let tree = trace.get("tree").and_then(|t| t.as_arr()).unwrap();
    assert_eq!(tree.len(), 1, "one tree root");
    assert_eq!(
        tree[0].get("name").and_then(|n| n.as_str()),
        Some("request")
    );
    assert!(tree[0].get("children").and_then(|c| c.as_arr()).is_some());

    server.shutdown_and_join();
}

#[test]
fn debug_endpoints_slow_log_and_chrome_export() {
    let dir = std::env::temp_dir().join(format!("branchlab-tracing-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let slow_log = dir.join("slow.jsonl");
    let mut server = test_server(ServerConfig {
        flight_recorder_cap: 8,
        // Threshold 0: every request is "slow", so the log always has
        // material.
        slow_ms: Some(0),
        slow_log: Some(slow_log.clone()),
        ..ServerConfig::default()
    });
    let addr = server.addr().to_string();
    wait_ready(&addr);

    let resp = one_shot(&addr, "POST", "/v1/sweep", Some(SWEEP_BODY)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    // /debug/traces lists the recorder, newest first.
    let list = one_shot(&addr, "GET", "/debug/traces", None).unwrap();
    assert_eq!(list.status, 200);
    let v = json::parse(&list.text()).unwrap();
    assert_eq!(v.get("capacity").and_then(|c| c.as_int()), Some(8));
    assert!(v.get("recorded").and_then(|r| r.as_int()).unwrap() >= 1);
    let traces = v.get("traces").and_then(|t| t.as_arr()).unwrap();
    assert!(!traces.is_empty());
    for t in traces {
        assert!(t.get("id").and_then(|i| i.as_str()).is_some());
        assert!(t.get("total_us").and_then(|d| d.as_int()).is_some());
    }

    // /debug/slow ranks by total time; the sweep must outrank the
    // readiness probes.
    let slow = one_shot(&addr, "GET", "/debug/slow", None).unwrap();
    assert_eq!(slow.status, 200);
    let v = json::parse(&slow.text()).unwrap();
    let ranked = v.get("traces").and_then(|t| t.as_arr()).unwrap();
    assert!(!ranked.is_empty());
    assert_eq!(
        ranked[0].get("label").and_then(|l| l.as_str()),
        Some("POST /v1/sweep"),
        "the sweep should be the slowest retained trace: {}",
        slow.text()
    );
    let totals: Vec<i64> = ranked
        .iter()
        .map(|t| t.get("total_us").and_then(|d| d.as_int()).unwrap())
        .collect();
    assert!(
        totals.windows(2).all(|w| w[0] >= w[1]),
        "slowest-first ordering: {totals:?}"
    );

    // Unknown and malformed ids 404 rather than 500.
    for bad in ["ffffffffffffffff", "zzz", "0"] {
        let miss = one_shot(&addr, "GET", &format!("/debug/traces/{bad}"), None).unwrap();
        assert_eq!(miss.status, 404, "{bad}");
    }

    // The queue-wait histogram and slow counter are scraped.
    let metrics = one_shot(&addr, "GET", "/metrics", None).unwrap().text();
    assert!(metrics.contains("server_queue_wait_us"), "{metrics}");
    let slow_count = metrics
        .lines()
        .find_map(|l| l.strip_prefix("server_slow_requests "))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap();
    assert!(slow_count >= 1.0, "{metrics}");

    server.shutdown_and_join();

    // The slow log is JSONL with the per-span decomposition.
    let log = std::fs::read_to_string(&slow_log).unwrap();
    assert!(!log.trim().is_empty(), "slow log must not be empty");
    for line in log.lines() {
        let entry = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL `{line}`: {e}"));
        assert!(entry.get("trace_id").and_then(|i| i.as_str()).is_some());
        assert!(entry.get("total_us").and_then(|t| t.as_int()).is_some());
        assert!(entry.get("spans").and_then(|s| s.as_arr()).is_some());
    }
    let sweep_logged = log.lines().any(|l| l.contains("POST /v1/sweep"));
    assert!(sweep_logged, "the sweep request must be slow-logged: {log}");

    // The Chrome-trace export of the retained traces validates.
    let chrome = server.chrome_trace_json();
    let names = validate_chrome_trace(&chrome).expect("exported trace must validate");
    assert!(
        names.iter().any(|n| n == "request"),
        "export must contain request spans: {names:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
