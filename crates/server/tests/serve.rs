//! End-to-end tests: boot `branchlabd` in-process and drive it over
//! real sockets with the std-only client.
//!
//! Proves the three server guarantees the issue names:
//! 1. responses are **byte-identical** to a direct `SweepBatch` run
//!    of the same configuration,
//! 2. flooding past the queue bound sheds load with `503` +
//!    `Retry-After` instead of growing memory without bound,
//! 3. identical concurrent requests **coalesce** (or hit the cache) —
//!    visible in `/metrics`.

use std::time::{Duration, Instant};

use branchlab_server::api::SweepRequest;
use branchlab_server::client::{one_shot, Client};
use branchlab_server::{Server, ServerConfig};

fn test_server(workers: usize, queue_cap: usize) -> branchlab_server::ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap,
        // Warm a single small bench so tests don't pay a full-suite
        // warmup; requests may still name any benchmark.
        warm_benches: vec!["wc".to_string()],
        ..ServerConfig::default()
    };
    Server::start(config).expect("start server")
}

fn wait_ready(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(resp) = one_shot(addr, "GET", "/readyz", None) {
            if resp.status == 200 {
                return;
            }
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A sweep body heavy enough (many predictor points) that it occupies
/// a worker for a measurable time.
fn heavy_body(bench: &str, seed_points: usize) -> String {
    let preds: Vec<String> = (0..seed_points)
        .map(|i| format!("{{\"kind\": \"sbtb\", \"entries\": {}}}", 16 << (i % 6)))
        .collect();
    format!(
        "{{\"bench\": \"{bench}\", \"predictors\": [{}], \"ras\": [1, 8, 64]}}",
        preds.join(", ")
    )
}

fn metric_value(metrics_text: &str, name: &str) -> Option<f64> {
    metrics_text.lines().find_map(|line| {
        let (metric, value) = line.split_once(' ')?;
        (metric == name).then(|| value.parse().ok())?
    })
}

#[test]
fn serves_health_benchmarks_and_metrics() {
    let mut server = test_server(2, 8);
    let addr = server.addr().to_string();

    let health = one_shot(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), "ok\n");

    wait_ready(&addr);

    let benches = one_shot(&addr, "GET", "/v1/benchmarks", None).unwrap();
    assert_eq!(benches.status, 200);
    let v = branchlab_telemetry::json::parse(&benches.text()).unwrap();
    let list = v.get("benchmarks").and_then(|b| b.as_arr()).unwrap();
    assert_eq!(list.len(), branchlab_workloads::all_benchmarks().count());
    let wc = list
        .iter()
        .find(|b| b.get("name").and_then(|n| n.as_str()) == Some("wc"))
        .unwrap();
    assert_eq!(wc.get("resident").and_then(|r| r.as_bool()), Some(true));
    assert!(wc.get("trace_events").and_then(|e| e.as_int()).unwrap() > 0);
    assert!(wc.get("branch_sites").and_then(|s| s.as_int()).unwrap() > 0);
    assert_eq!(
        wc.get("footprint_class").and_then(|c| c.as_str()),
        Some("small")
    );
    // The synthetic large-footprint benchmarks advertise their class so
    // clients can pick capacity-stressing workloads without trial sweeps.
    let dispatch = list
        .iter()
        .find(|b| b.get("name").and_then(|n| n.as_str()) == Some("dispatch"))
        .unwrap();
    assert_eq!(
        dispatch.get("footprint_class").and_then(|c| c.as_str()),
        Some("large")
    );
    assert!(
        dispatch
            .get("branch_sites")
            .and_then(|s| s.as_int())
            .unwrap()
            >= 400
    );

    let metrics = one_shot(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("server_requests"), "{text}");
    assert!(text.contains("server_ready 1"), "{text}");

    let missing = one_shot(&addr, "GET", "/v1/nope", None).unwrap();
    assert_eq!(missing.status, 404);
    let wrong_method = one_shot(&addr, "GET", "/v1/sweep", None).unwrap();
    assert_eq!(wrong_method.status, 405);

    server.shutdown_and_join();
}

#[test]
fn multi_config_sweep_flows_through_lanes_and_shows_in_metrics() {
    let mut server = test_server(1, 4);
    let addr = server.addr().to_string();
    wait_ready(&addr);

    // Three CBTB points sharing one geometry: the planner must pack
    // them into a single 3-lane family on the compute path.
    let body = r#"{"bench": "wc",
                   "predictors": [{"kind": "cbtb", "threshold": 1},
                                  {"kind": "cbtb", "threshold": 2},
                                  {"kind": "cbtb", "threshold": 3}]}"#;
    let resp = one_shot(&addr, "POST", "/v1/sweep", Some(body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.header("x-branchlab-source"), Some("computed"));

    let metrics = one_shot(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    // Process-wide counters, so other tests may add to them: assert
    // floors, not exact values.
    let families = metric_value(&text, "suite_sweep_lane_families").unwrap_or(0.0);
    let lanes = metric_value(&text, "suite_sweep_lane_lanes").unwrap_or(0.0);
    let events = metric_value(&text, "suite_sweep_lane_events").unwrap_or(0.0);
    assert!(families >= 1.0, "no lane family scored:\n{text}");
    assert!(lanes >= 3.0, "expected >= 3 packed lanes:\n{text}");
    assert!(events >= 1.0, "lane engine scored no events:\n{text}");

    server.shutdown_and_join();
}

#[test]
fn sweep_responses_are_byte_identical_to_direct_evaluation() {
    let mut server = test_server(2, 8);
    let addr = server.addr().to_string();
    wait_ready(&addr);

    let body = r#"{"bench": "wc",
                   "predictors": [{"kind": "cbtb"},
                                  {"kind": "sbtb", "entries": 128},
                                  {"kind": "gshare", "table_bits": 10},
                                  {"kind": "btfn"}],
                   "ras": [2, 16]}"#;

    let resp = one_shot(&addr, "POST", "/v1/sweep", Some(body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.header("x-branchlab-source"), Some("computed"));

    // The reference: the same request evaluated directly through
    // SweepBatch, bypassing HTTP entirely.
    let base = ServerConfig::default().experiment;
    let req = SweepRequest::parse(body.as_bytes(), &base).unwrap();
    let direct = branchlab_server::evaluate_direct(&req, &base).unwrap();
    assert_eq!(
        resp.text(),
        &*direct,
        "served bytes must match direct SweepBatch evaluation"
    );

    // A repeat is served from the cache — and is still byte-identical.
    let again = one_shot(&addr, "POST", "/v1/sweep", Some(body)).unwrap();
    assert_eq!(again.status, 200);
    assert_eq!(again.header("x-branchlab-source"), Some("cache"));
    assert_eq!(again.text(), resp.text());

    server.shutdown_and_join();
}

#[test]
fn keep_alive_connection_serves_multiple_requests() {
    let mut server = test_server(1, 8);
    let addr = server.addr().to_string();
    wait_ready(&addr);

    let mut client = Client::connect(&addr).unwrap();
    for _ in 0..3 {
        let resp = client.get("/healthz").unwrap();
        assert_eq!(resp.status, 200);
    }
    let resp = client
        .post_json(
            "/v1/sweep",
            r#"{"bench": "wc", "predictors": [{"kind": "always_taken"}]}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    let resp = client.get("/metrics").unwrap();
    assert_eq!(resp.status, 200);

    let bad = client.post_json("/v1/sweep", "{not json").unwrap();
    assert_eq!(bad.status, 400);

    server.shutdown_and_join();
}

#[test]
fn flood_past_queue_bound_sheds_load_with_503() {
    // One worker, a queue of two: any sustained burst must overflow.
    let mut server = test_server(1, 2);
    let addr = server.addr().to_string();
    wait_ready(&addr);

    // Occupy the worker with a heavy sweep, then flood with distinct
    // requests (distinct keys, so no coalescing can absorb them).
    let mut primer = Client::connect(&addr).unwrap();
    let primer_thread = {
        let body = heavy_body("grep", 48);
        std::thread::spawn(move || primer.post_json("/v1/sweep", &body).map(|r| r.status))
    };

    // Give the worker a moment to claim the primer, then flood with
    // 12 *concurrent* distinct requests. One worker is busy and the
    // queue holds two, so most of the burst must be shed immediately
    // (try_submit rejects synchronously — nothing piles up in memory).
    std::thread::sleep(Duration::from_millis(100));
    let flooders: Vec<_> = (0..12u64)
        .map(|seed| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let body = format!(
                    "{{\"bench\": \"cmp\", \"seed\": {seed}, \"predictors\": [{}]}}",
                    (0..32)
                        .map(|i| format!("{{\"kind\": \"sbtb\", \"entries\": {}}}", 8 << (i % 8)))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                let resp = one_shot(&addr, "POST", "/v1/sweep", Some(&body)).unwrap();
                (resp.status, resp.header("retry-after").map(str::to_string))
            })
        })
        .collect();
    let outcomes: Vec<_> = flooders.into_iter().map(|t| t.join().unwrap()).collect();
    let rejected = outcomes.iter().filter(|(status, _)| *status == 503).count();
    assert!(
        rejected >= 2,
        "12 concurrent requests vs 1 busy worker + queue of 2: most must be \
         shed, got {outcomes:?}"
    );
    assert!(
        outcomes
            .iter()
            .filter(|(status, _)| *status == 503)
            .all(|(_, retry)| retry.is_some()),
        "every 503 must carry Retry-After: {outcomes:?}"
    );

    // The primed request itself still completes (drain, not drop).
    let primer_status = primer_thread.join().unwrap().unwrap();
    assert_eq!(primer_status, 200);

    let metrics = one_shot(&addr, "GET", "/metrics", None).unwrap().text();
    assert!(
        metric_value(&metrics, "server_queue_rejected").unwrap_or(0.0) >= 2.0,
        "{metrics}"
    );

    server.shutdown_and_join();
}

#[test]
fn identical_concurrent_requests_coalesce_or_hit_cache() {
    let mut server = test_server(1, 8);
    let addr = server.addr().to_string();
    wait_ready(&addr);

    let body = heavy_body("wc", 24);
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let body = body.clone();
            std::thread::spawn(move || {
                let resp = one_shot(&addr, "POST", "/v1/sweep", Some(&body)).unwrap();
                (resp.status, resp.text())
            })
        })
        .collect();
    let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for (status, body) in &results {
        assert_eq!(*status, 200);
        assert_eq!(body, &results[0].1, "all responses must be byte-identical");
    }

    let metrics = one_shot(&addr, "GET", "/metrics", None).unwrap().text();
    let coalesced = metric_value(&metrics, "server_coalesce_hits").unwrap_or(0.0);
    let cached = metric_value(&metrics, "server_cache_hits").unwrap_or(0.0);
    assert!(
        coalesced + cached >= 1.0,
        "4 identical requests, 1 worker: at least one must coalesce or hit \
         the cache\n{metrics}"
    );
    assert_eq!(
        metric_value(&metrics, "server_sweeps_computed"),
        Some(1.0),
        "identical requests must share one replay pass\n{metrics}"
    );

    server.shutdown_and_join();
}

#[test]
fn readyz_reports_draining_with_503_during_shutdown() {
    let mut server = test_server(1, 4);
    let addr = server.addr().to_string();
    wait_ready(&addr);

    // Once warm-up finishes, /readyz names the boot temperature.
    let ready = one_shot(&addr, "GET", "/readyz", None).unwrap();
    assert_eq!(ready.status, 200);
    assert!(
        ["warm\n", "cold\n"].contains(&ready.text().as_str()),
        "unexpected readyz body {:?}",
        ready.text()
    );

    // A connection established *before* the drain gets the drain
    // grace window, so its next probe sees the draining signal
    // instead of a closed socket. One round-trip first: connect()
    // alone only reaches the listener backlog, and a socket the
    // accept loop never claimed gets reset when the listener drops.
    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    server.shutdown();
    let draining = client.get("/readyz").unwrap();
    assert_eq!(
        draining.status, 503,
        "readyz must fail load-balancer checks during drain"
    );
    assert_eq!(draining.text(), "draining\n");

    server.join();
}

#[test]
fn shutdown_drains_and_joins() {
    let mut server = test_server(2, 8);
    let addr = server.addr().to_string();
    wait_ready(&addr);

    // Leave a request in flight, then shut down: it must complete.
    let flight = {
        let addr = addr.clone();
        let body = heavy_body("wc", 16);
        std::thread::spawn(move || {
            one_shot(&addr, "POST", "/v1/sweep", Some(&body)).map(|r| r.status)
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    let t0 = Instant::now();
    server.shutdown_and_join();
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "shutdown must not hang"
    );
    assert_eq!(flight.join().unwrap().unwrap(), 200);

    // The socket is gone afterwards.
    assert!(one_shot(&addr, "GET", "/healthz", None).is_err());
}
