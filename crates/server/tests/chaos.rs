//! Crash-only guarantees, end to end: boot `branchlabd` in-process
//! with server-side chaos injection armed and prove that
//!
//! 1. responses stay **byte-identical** to a fault-free direct
//!    evaluation under every fault class at once,
//! 2. an injected worker panic costs exactly one request (a `500`
//!    echoing the trace id) and never the pool,
//! 3. a `kill -9`-style crash followed by a restart comes back
//!    **warm** from the spill directory and serves a prior request
//!    from the restored cache,
//! 4. a damaged spill degrades *silently* to a cold start.

use std::time::{Duration, Instant};

use branchlab_server::api::SweepRequest;
use branchlab_server::chaos::ChaosConfig;
use branchlab_server::client::{one_shot, one_shot_with_retry, Client, RetryPolicy};
use branchlab_server::{Server, ServerConfig, ServerHandle};

fn base_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_cap: 8,
        warm_benches: vec!["wc".to_string()],
        ..ServerConfig::default()
    }
}

fn wait_ready(addr: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(resp) = one_shot(addr, "GET", "/readyz", None) {
            if resp.status == 200 {
                return resp.text();
            }
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn metric_value(metrics_text: &str, name: &str) -> Option<f64> {
    metrics_text.lines().find_map(|line| {
        let (metric, value) = line.split_once(' ')?;
        (metric == name).then(|| value.parse().ok())?
    })
}

fn metrics_text(addr: &str) -> String {
    one_shot(addr, "GET", "/metrics", None).unwrap().text()
}

fn spill_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bl-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 12,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(40),
        retry_budget: Duration::from_secs(30),
        seed: 7,
    }
}

/// Direct, fault-free evaluation of `body` — the reference bytes every
/// served response must match exactly.
fn direct_bytes(body: &str) -> String {
    let base = ServerConfig::default().experiment;
    let req = SweepRequest::parse(body.as_bytes(), &base).unwrap();
    branchlab_server::evaluate_direct(&req, &base)
        .unwrap()
        .to_string()
}

#[test]
fn responses_stay_byte_identical_under_every_fault_class() {
    let dir = spill_dir("ident");
    let mut server = Server::start(ServerConfig {
        spill_dir: Some(dir.clone()),
        spill_every: Duration::from_millis(100),
        chaos: ChaosConfig {
            seed: 42,
            worker_panic_rate: 0.5,
            slow_compute_rate: 1.0,
            delay: Duration::from_millis(5),
            cache_corrupt_rate: 1.0,
            spill_fail_rate: 1.0,
        },
        ..base_config()
    })
    .unwrap();
    let addr = server.addr().to_string();
    wait_ready(&addr);

    let bodies: Vec<String> = (0..3)
        .map(|i| {
            format!(
                "{{\"bench\": \"wc\", \"predictors\": [{{\"kind\": \"sbtb\", \"entries\": {}}}, \
                 {{\"kind\": \"btfn\"}}], \"ras\": [4]}}",
                32 << i
            )
        })
        .collect();

    // Each body four times: first issue computes, repeats exercise the
    // cache-corruption lane (every cached read is tampered, must be
    // detected and recomputed — never served damaged).
    for round in 0..4 {
        for body in &bodies {
            let resp = one_shot_with_retry(&addr, "POST", "/v1/sweep", Some(body), &fast_retry())
                .unwrap_or_else(|e| panic!("round {round}: retries exhausted: {e}"));
            assert_eq!(resp.status, 200, "round {round}: {}", resp.text());
            assert_eq!(
                resp.text(),
                direct_bytes(body),
                "round {round}: served bytes diverged from fault-free evaluation"
            );
        }
    }

    // Every fault class actually fired and was absorbed.
    let metrics = metrics_text(&addr);
    assert!(
        metric_value(&metrics, "server_cache_corrupt").unwrap_or(0.0) >= 1.0,
        "cache-corruption lane never detected damage\n{metrics}"
    );
    assert!(
        metric_value(&metrics, "server_spill_errors").unwrap_or(0.0) >= 1.0,
        "spill-failure lane never fired\n{metrics}"
    );
    assert!(
        server.worker_restarts() >= 1,
        "worker-panic lane never exercised the respawn path"
    );
    assert_eq!(
        metric_value(&metrics, "server_worker_restarts"),
        Some(server.worker_restarts() as f64),
        "{metrics}"
    );

    // The graceful drain's final spill bypasses chaos, so durable
    // state lands even though every periodic spill was failed.
    server.shutdown_and_join();
    let snapshot = std::fs::read_to_string(dir.join("cache.jsonl")).unwrap();
    assert!(
        snapshot.contains("\"key\""),
        "drain spill published nothing"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_worker_panic_costs_one_request_never_the_pool() {
    let mut server = Server::start(ServerConfig {
        chaos: ChaosConfig {
            worker_panic_rate: 1.0,
            ..ChaosConfig::default()
        },
        ..base_config()
    })
    .unwrap();
    let addr = server.addr().to_string();
    wait_ready(&addr);

    let body = br#"{"bench": "wc", "predictors": [{"kind": "always_taken"}]}"#;
    let mut client = Client::connect(&addr).unwrap();
    for i in 0..3u64 {
        let trace_id = format!("{:016x}", 0xabc0 + i);
        let resp = client
            .request_with(
                "POST",
                "/v1/sweep",
                &[("X-Branchlab-Trace-Id", &trace_id)],
                Some(body),
            )
            .unwrap();
        // The injected panic costs this one request a clean 500...
        assert_eq!(resp.status, 500, "request {i}: {}", resp.text());
        assert!(
            resp.text().contains("sweep worker panicked"),
            "request {i}: {}",
            resp.text()
        );
        // ...with the trace id echoed for correlation.
        assert_eq!(
            resp.header("x-branchlab-trace-id"),
            Some(trace_id.as_str()),
            "request {i}"
        );
    }

    // Never the pool: a fresh worker replaced each casualty, and the
    // daemon is still fully alive. The 500 is published the instant
    // the job guard drops, slightly before the pool books the
    // restart, so give the counter a moment to catch up.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.worker_restarts() < 3 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.worker_restarts(), 3);
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    server.shutdown_and_join();
}

#[test]
fn kill_then_restart_comes_back_warm_and_serves_from_spilled_cache() {
    let dir = spill_dir("warm");
    let body = r#"{"bench": "wc", "predictors": [{"kind": "cbtb"}, {"kind": "btfn"}], "ras": [8]}"#;

    // First life: compute one sweep, wait for a periodic spill to
    // publish it, then die abruptly (no graceful-drain spill).
    let first_bytes;
    {
        let mut server = Server::start(ServerConfig {
            spill_dir: Some(dir.clone()),
            spill_every: Duration::from_millis(100),
            ..base_config()
        })
        .unwrap();
        let addr = server.addr().to_string();
        wait_ready(&addr);

        let resp = one_shot(&addr, "POST", "/v1/sweep", Some(body)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert_eq!(resp.header("x-branchlab-source"), Some("computed"));
        first_bytes = resp.text();

        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let metrics = metrics_text(&addr);
            if metric_value(&metrics, "server_spill_entries").unwrap_or(0.0) >= 1.0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "periodic spill never captured the cache entry\n{metrics}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        server.kill();
    }

    // Second life: same spill dir, fresh process state.
    let mut server = Server::start(ServerConfig {
        spill_dir: Some(dir.clone()),
        spill_every: Duration::from_millis(100),
        ..base_config()
    })
    .unwrap();
    let addr = server.addr().to_string();
    assert_eq!(wait_ready(&addr), "warm\n", "restart must report warm");
    assert!(server.is_warm_restart());

    // The pre-crash request is answered from the restored cache, byte
    // for byte.
    let resp = one_shot(&addr, "POST", "/v1/sweep", Some(body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(
        resp.header("x-branchlab-source"),
        Some("cache"),
        "restart must serve the spilled result, not recompute"
    );
    assert_eq!(resp.text(), first_bytes);

    let metrics = metrics_text(&addr);
    assert!(
        metric_value(&metrics, "server_spill_restored").unwrap_or(0.0) >= 1.0,
        "{metrics}"
    );
    server.shutdown_and_join();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn damaged_spill_degrades_silently_to_cold_start() {
    // A spill directory holding nothing but garbage: an empty traces
    // dir and a cache snapshot of alien bytes.
    let dir = spill_dir("cold");
    std::fs::create_dir_all(dir.join("traces")).unwrap();
    std::fs::write(
        dir.join("cache.jsonl"),
        b"\x00\xffnot a snapshot\nstill not\n",
    )
    .unwrap();

    let mut server: ServerHandle = Server::start(ServerConfig {
        spill_dir: Some(dir.clone()),
        ..base_config()
    })
    .unwrap();
    let addr = server.addr().to_string();
    assert_eq!(
        wait_ready(&addr),
        "cold\n",
        "nothing validated, so the restart must admit it is cold"
    );
    assert!(!server.is_warm_restart());

    // Degradation is silent: the daemon serves normally (computing
    // fresh), and the damage is only visible as a skip counter.
    let resp = one_shot(
        &addr,
        "POST",
        "/v1/sweep",
        Some(r#"{"bench": "wc", "predictors": [{"kind": "btfn"}]}"#),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.header("x-branchlab-source"), Some("computed"));

    let metrics = metrics_text(&addr);
    assert!(
        metric_value(&metrics, "server_spill_skipped").unwrap_or(0.0) >= 1.0,
        "{metrics}"
    );
    assert_eq!(metric_value(&metrics, "server_spill_restored"), Some(0.0));
    server.shutdown_and_join();
    std::fs::remove_dir_all(&dir).unwrap();
}
