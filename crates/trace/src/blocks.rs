//! Block-granular iteration over shared trace buffers.
//!
//! [`BlockIter`] decodes a slice of per-run [`TraceBuf`]s into fixed-size
//! [`EventBlock`]s, splitting the stream into its two non-interacting
//! halves: branch events (consumed by branch predictors) and call/return
//! events (consumed by return-address stacks). The input slice is read-only,
//! so any number of iterators — one per sweep worker — can walk the same
//! shared trace concurrently, and every consumer observes the complete
//! stream in capture order. That ordering is what makes the parallel sweep
//! executor in `branchlab-experiments` bit-identical to the serial path.

use branchlab_ir::{Addr, FuncId};

use crate::event::BranchEvent;
use crate::replay::{ReplayError, TraceBuf, TraceEvent, TraceReader};

/// Default number of events per delivered [`EventBlock`]. Matches the
/// sweep executor's scoring-block size: large enough to amortize dispatch,
/// small enough to stay cache-resident.
pub const DEFAULT_BLOCK_EVENTS: usize = 16 * 1024;

/// A call or return event, in capture order relative to other call/return
/// events. Consumed by return-address stacks, which never observe plain
/// branch events.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CallRet {
    /// An executed call instruction.
    Call {
        /// Address of the call instruction.
        from: Addr,
        /// The function called into.
        callee: FuncId,
    },
    /// An executed return instruction.
    Ret {
        /// Address of the return instruction.
        from: Addr,
        /// The address control returns to.
        to: Addr,
    },
}

/// One decoded block of trace events, borrowed from a [`BlockIter`]'s
/// internal buffers and valid until the next [`BlockIter::next_block`]
/// call.
#[derive(Copy, Clone, Debug)]
pub struct EventBlock<'a> {
    /// Branch events in capture order.
    pub branches: &'a [BranchEvent],
    /// Call/return events in capture order.
    pub callrets: &'a [CallRet],
}

impl EventBlock<'_> {
    /// Total events in this block (branches plus calls/returns).
    #[must_use]
    pub fn len(&self) -> usize {
        self.branches.len() + self.callrets.len()
    }

    /// Whether the block holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty() && self.callrets.is_empty()
    }
}

/// Streaming block decoder over a shared slice of per-run [`TraceBuf`]s.
///
/// Blocks are filled to the configured event count across run boundaries;
/// only the final block may be short. An empty input slice — or one whose
/// buffers hold no events — yields no blocks at all.
pub struct BlockIter<'a> {
    runs: &'a [TraceBuf],
    next_run: usize,
    reader: Option<TraceReader<'a>>,
    block_events: usize,
    branches: Vec<BranchEvent>,
    callrets: Vec<CallRet>,
    delivered: u64,
    span: Option<branchlab_telemetry::SpanHandle>,
}

impl<'a> BlockIter<'a> {
    /// An iterator over `runs` delivering [`DEFAULT_BLOCK_EVENTS`]-event
    /// blocks.
    #[must_use]
    pub fn new(runs: &'a [TraceBuf]) -> Self {
        Self::with_block_events(runs, DEFAULT_BLOCK_EVENTS)
    }

    /// An iterator over `runs` delivering `block_events`-event blocks.
    ///
    /// # Panics
    /// Panics if `block_events` is zero.
    #[must_use]
    pub fn with_block_events(runs: &'a [TraceBuf], block_events: usize) -> Self {
        assert!(block_events > 0, "block size must be positive");
        BlockIter {
            runs,
            next_run: 0,
            reader: None,
            block_events,
            branches: Vec::with_capacity(block_events),
            callrets: Vec::new(),
            delivered: 0,
            span: None,
        }
    }

    /// Record this iterator's lifetime as a `block_replay` child span
    /// of `parent`, carrying the blocks decoded and events delivered
    /// as it goes (the span closes when the iterator drops). Off by
    /// default — untraced sweeps pay nothing.
    pub fn set_trace_parent(&mut self, parent: &branchlab_telemetry::SpanLink) {
        self.span = Some(parent.child("block_replay"));
    }

    /// Total events delivered so far across all blocks.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Decode the next block, or `Ok(None)` when every run is exhausted.
    /// The returned block borrows this iterator's buffers and is
    /// invalidated by the next call.
    ///
    /// # Errors
    /// Returns [`ReplayError`] on a truncated or corrupt buffer.
    pub fn next_block(&mut self) -> Result<Option<EventBlock<'_>>, ReplayError> {
        self.branches.clear();
        self.callrets.clear();
        while self.branches.len() + self.callrets.len() < self.block_events {
            let reader = match &mut self.reader {
                Some(r) => r,
                None => {
                    let Some(buf) = self.runs.get(self.next_run) else {
                        break;
                    };
                    self.next_run += 1;
                    self.reader.insert(TraceReader::new(buf))
                }
            };
            match reader.next_event()? {
                Some(TraceEvent::Branch(ev)) => self.branches.push(ev),
                Some(TraceEvent::Call { from, callee }) => {
                    self.callrets.push(CallRet::Call { from, callee });
                }
                Some(TraceEvent::Ret { from, to }) => {
                    self.callrets.push(CallRet::Ret { from, to });
                }
                None => self.reader = None,
            }
        }
        if self.branches.is_empty() && self.callrets.is_empty() {
            return Ok(None);
        }
        let n = (self.branches.len() + self.callrets.len()) as u64;
        self.delivered += n;
        if let Some(s) = self.span.as_mut() {
            s.add_work(n);
            s.arg("blocks", s.arg_value("blocks").unwrap_or(0) + 1);
        }
        Ok(Some(EventBlock {
            branches: &self.branches,
            callrets: &self.callrets,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BranchKind, ExecHooks};
    use crate::replay::Capture;
    use branchlab_ir::{BlockId, BranchId, Cond};

    fn branch(i: u32, taken: bool) -> BranchEvent {
        BranchEvent {
            pc: Addr(100 + i),
            kind: BranchKind::Cond,
            taken,
            target: Addr(500),
            fallthrough: Addr(101 + i),
            branch: BranchId {
                func: FuncId(0),
                block: BlockId(i % 7),
            },
            likely: false,
            cond: Some(Cond::Lt),
        }
    }

    /// A run with `n_branches` branch events plus one call/ret pair.
    fn run_with(n_branches: u32) -> TraceBuf {
        let mut cap = Capture::new();
        for i in 0..n_branches {
            cap.branch(&branch(i, i % 3 == 0));
        }
        if n_branches > 0 {
            cap.call(Addr(900), FuncId(2));
            cap.ret(Addr(950), Addr(901));
        }
        cap.into_buf()
    }

    fn drain(runs: &[TraceBuf], block_events: usize) -> (Vec<usize>, u64, u64) {
        let mut iter = BlockIter::with_block_events(runs, block_events);
        let mut sizes = Vec::new();
        let mut branches = 0u64;
        let mut callrets = 0u64;
        while let Some(block) = iter.next_block().unwrap() {
            assert!(!block.is_empty(), "iterator must never yield empty blocks");
            assert!(block.len() <= block_events);
            sizes.push(block.len());
            branches += block.branches.len() as u64;
            callrets += block.callrets.len() as u64;
        }
        assert_eq!(iter.delivered(), branches + callrets);
        (sizes, branches, callrets)
    }

    #[test]
    fn empty_run_slice_yields_no_blocks() {
        let (sizes, branches, callrets) = drain(&[], 8);
        assert!(sizes.is_empty());
        assert_eq!((branches, callrets), (0, 0));
    }

    #[test]
    fn empty_trace_yields_no_blocks() {
        let runs = vec![run_with(0)];
        assert_eq!(runs[0].events(), 0);
        let (sizes, ..) = drain(&runs, 8);
        assert!(sizes.is_empty());
    }

    #[test]
    fn trace_smaller_than_one_block_is_one_short_block() {
        let runs = vec![run_with(5)]; // 5 branches + call + ret = 7 events
        let (sizes, branches, callrets) = drain(&runs, 16 * 1024);
        assert_eq!(sizes, vec![7]);
        assert_eq!((branches, callrets), (5, 2));
    }

    #[test]
    fn exact_block_boundary_has_no_trailing_empty_block() {
        // 6 branches + 2 callrets = 8 events = exactly two 4-event blocks.
        let runs = vec![run_with(6)];
        let (sizes, branches, callrets) = drain(&runs, 4);
        assert_eq!(sizes, vec![4, 4]);
        assert_eq!((branches, callrets), (6, 2));
    }

    #[test]
    fn blocks_fill_across_run_boundaries() {
        // Runs of 7, 0, and 7 events; blocks of 5 events pack 14 events
        // into sizes [5, 5, 4] regardless of run boundaries.
        let runs = vec![run_with(5), run_with(0), run_with(5)];
        let (sizes, branches, callrets) = drain(&runs, 5);
        assert_eq!(sizes, vec![5, 5, 4]);
        assert_eq!((branches, callrets), (10, 4));
    }

    #[test]
    fn block_stream_preserves_capture_order() {
        let runs = vec![run_with(9)];
        let mut iter = BlockIter::with_block_events(&runs, 4);
        let mut seen = Vec::new();
        let mut callrets = Vec::new();
        while let Some(block) = iter.next_block().unwrap() {
            seen.extend_from_slice(block.branches);
            callrets.extend_from_slice(block.callrets);
        }
        let expect: Vec<BranchEvent> = (0..9).map(|i| branch(i, i % 3 == 0)).collect();
        assert_eq!(seen, expect);
        assert_eq!(
            callrets,
            vec![
                CallRet::Call {
                    from: Addr(900),
                    callee: FuncId(2)
                },
                CallRet::Ret {
                    from: Addr(950),
                    to: Addr(901)
                },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let _ = BlockIter::with_block_events(&[], 0);
    }
}
