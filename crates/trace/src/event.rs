//! Dynamic branch events and the trace-sink trait.
//!
//! These types are produced by `branchlab-interp` and consumed by the
//! predictors, the profiler, and the pipeline simulator. They live here
//! (rather than in the interpreter crate) so consumers can be built and
//! tested against synthetic event streams without an interpreter.

use branchlab_ir::{Addr, BranchId, Cond, FuncId};

/// Classification of a dynamic branch, matching the paper's taxonomy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BranchKind {
    /// Conditional compare-and-branch.
    Cond,
    /// Unconditional branch with a known (compile-time) target.
    UncondDirect,
    /// Unconditional branch with an unknown (run-time) target —
    /// jump-table dispatch.
    UncondIndirect,
}

/// One executed control transfer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BranchEvent {
    /// Address of the branch instruction.
    pub pc: Addr,
    /// Branch class.
    pub kind: BranchKind,
    /// Whether the branch was taken (always true for unconditional).
    pub taken: bool,
    /// The actual target the branch went to when taken; for a not-taken
    /// conditional this still holds the would-be target.
    pub target: Addr,
    /// The fall-through address (`pc + 1 + slots`).
    pub fallthrough: Addr,
    /// Layout-stable identity of the branch site.
    pub branch: BranchId,
    /// The compiler's likely bit (Forward Semantic), false otherwise.
    pub likely: bool,
    /// The comparison folded into a conditional branch (`None` for
    /// unconditional branches) — what an opcode-based static predictor
    /// keys on.
    pub cond: Option<Cond>,
}

impl BranchEvent {
    /// The address control actually moved to.
    #[must_use]
    pub fn next_pc(&self) -> Addr {
        if self.taken {
            self.target
        } else {
            self.fallthrough
        }
    }
}

/// Observer of a dynamic execution. All methods default to no-ops; `()`
/// implements the trait for observation-free runs.
pub trait ExecHooks {
    /// Called for every executed branch (conditional or unconditional,
    /// excluding calls/returns).
    fn branch(&mut self, ev: &BranchEvent) {
        let _ = ev;
    }
    /// Called for every executed call instruction.
    fn call(&mut self, from: Addr, callee: FuncId) {
        let _ = (from, callee);
    }
    /// Called for every executed return instruction; `to` is the address
    /// control returns to (what a return-address stack must produce).
    fn ret(&mut self, from: Addr, to: Addr) {
        let _ = (from, to);
    }
}

impl ExecHooks for () {}

/// Forward both hook streams to two hooks (compose predictors + stats in
/// a single pass over a long execution; nest tuples for more).
impl<A: ExecHooks, B: ExecHooks> ExecHooks for (&mut A, &mut B) {
    fn branch(&mut self, ev: &BranchEvent) {
        self.0.branch(ev);
        self.1.branch(ev);
    }
    fn call(&mut self, from: Addr, callee: FuncId) {
        self.0.call(from, callee);
        self.1.call(from, callee);
    }
    fn ret(&mut self, from: Addr, to: Addr) {
        self.0.ret(from, to);
        self.1.ret(from, to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_ir::BlockId;

    fn ev(taken: bool) -> BranchEvent {
        BranchEvent {
            pc: Addr(10),
            kind: BranchKind::Cond,
            taken,
            target: Addr(50),
            fallthrough: Addr(11),
            branch: BranchId {
                func: FuncId(0),
                block: BlockId(1),
            },
            likely: false,
            cond: Some(Cond::Eq),
        }
    }

    #[test]
    fn next_pc_follows_outcome() {
        assert_eq!(ev(true).next_pc(), Addr(50));
        assert_eq!(ev(false).next_pc(), Addr(11));
    }

    #[test]
    fn unit_hooks_compile_and_do_nothing() {
        let mut h = ();
        h.branch(&ev(true));
        h.call(Addr(0), FuncId(0));
        h.ret(Addr(0), Addr(1));
    }
}
