//! # branchlab-trace
//!
//! Dynamic branch-trace events and statistics collectors for the
//! `branchlab` reproduction of Hwu/Conte/Chang (ISCA 1989).
//!
//! * [`BranchEvent`]/[`BranchKind`]: one executed control transfer, in
//!   the paper's taxonomy (conditional, unconditional-known-target,
//!   unconditional-unknown-target).
//! * [`ExecHooks`]: the sink trait the interpreter drives; predictors and
//!   collectors implement it, and `(&mut a, &mut b)` composes two sinks
//!   for single-pass experiments.
//! * [`BranchMix`]: Table 2 percentages.
//! * [`SiteStats`]: per-site taken/total counts — the raw material for
//!   profile-guided (Forward Semantic) prediction.
//! * [`TraceRecorder`]: bounded event recording for tests.

#![warn(missing_docs)]

mod event;
mod stats;

pub use event::{BranchEvent, BranchKind, ExecHooks};
pub use stats::{BranchMix, SiteCounts, SiteStats, TraceRecorder};
