//! # branchlab-trace
//!
//! Dynamic branch-trace events and statistics collectors for the
//! `branchlab` reproduction of Hwu/Conte/Chang (ISCA 1989).
//!
//! * [`BranchEvent`]/[`BranchKind`]: one executed control transfer, in
//!   the paper's taxonomy (conditional, unconditional-known-target,
//!   unconditional-unknown-target).
//! * [`ExecHooks`]: the sink trait the interpreter drives; predictors and
//!   collectors implement it, and `(&mut a, &mut b)` composes two sinks
//!   for single-pass experiments.
//! * [`BranchMix`]: Table 2 percentages.
//! * [`SiteStats`]: per-site taken/total counts — the raw material for
//!   profile-guided (Forward Semantic) prediction.
//! * [`TraceRecorder`]: bounded event recording for tests.
//! * [`TraceBuf`]/[`Capture`]/[`replay`]: compact capture of the full
//!   dynamic event stream and memory-speed replay into any sink —
//!   the trace-driven engine behind the sweep experiments.
//! * [`TraceKey`]/[`save_trace`]/[`load_trace`]: hash-validated
//!   on-disk trace caching.
//! * [`TraceReader`]/[`TraceEvent`]/[`BlockIter`]/[`EventBlock`]:
//!   streaming decode of shared read-only trace buffers, one event or
//!   one block at a time — the substrate of the parallel sweep executor.

#![warn(missing_docs)]

mod blocks;
mod cache;
mod event;
mod replay;
mod stats;

pub use blocks::{BlockIter, CallRet, EventBlock, DEFAULT_BLOCK_EVENTS};
pub use cache::{hash_bytes, load_trace, save_trace, TraceKey};
pub use event::{BranchEvent, BranchKind, ExecHooks};
pub use replay::{replay, replay_traced, Capture, ReplayError, TraceBuf, TraceEvent, TraceReader};
pub use stats::{BranchMix, SiteCounts, SiteStats, TraceRecorder};
