//! On-disk trace cache format.
//!
//! One file per (benchmark, program content, scale, seed) holds all of
//! that benchmark's per-run [`TraceBuf`]s. The file embeds a digest of
//! its [`TraceKey`] and an FNV-1a checksum of the payload, so a stale
//! entry (the program or inputs changed) or a damaged file is detected
//! on load and the caller degrades to re-capturing the trace.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8 bytes  "BLTRACE1"
//! digest   u64      TraceKey::digest() of the writer's key
//! runs     u32      number of per-run buffers
//! per run: events u64, len u64, <len> encoded bytes
//! checksum u64      FNV-1a over everything above
//! ```

use std::io::{self, Write};
use std::path::Path;

use crate::replay::TraceBuf;

const MAGIC: &[u8; 8] = b"BLTRACE1";

/// FNV-1a over a byte stream (the workspace's standard content hash).
#[must_use]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Identity of a cached trace: which benchmark, which program content,
/// and which input-generation parameters produced it.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Benchmark name.
    pub bench: String,
    /// Hash of the program source the trace was captured from; a
    /// source edit invalidates the cache entry.
    pub program_hash: u64,
    /// Input scale (`test`/`small`/`paper`).
    pub scale: String,
    /// Input-generation seed.
    pub seed: u64,
}

impl TraceKey {
    /// A digest of every key field, embedded in the file and validated
    /// on load.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut acc = Vec::with_capacity(self.bench.len() + self.scale.len() + 18);
        acc.extend_from_slice(self.bench.as_bytes());
        acc.push(0);
        acc.extend_from_slice(&self.program_hash.to_le_bytes());
        acc.extend_from_slice(self.scale.as_bytes());
        acc.push(0);
        acc.extend_from_slice(&self.seed.to_le_bytes());
        hash_bytes(&acc)
    }

    /// Cache file name for this key.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!(
            "{}-{}-{}-{:016x}.trace",
            self.bench, self.scale, self.seed, self.program_hash
        )
    }
}

struct ChecksumWriter<W> {
    inner: W,
    hash: u64,
}

impl<W: Write> ChecksumWriter<W> {
    fn new(inner: W) -> Self {
        ChecksumWriter {
            inner,
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        for &b in bytes {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.inner.write_all(bytes)
    }
}

/// Write a benchmark's per-run trace buffers to `path` (atomically via
/// a sibling temp file, so readers never observe a half-written entry).
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_trace(path: &Path, key: &TraceKey, runs: &[TraceBuf]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("trace.tmp");
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = ChecksumWriter::new(io::BufWriter::new(file));
        w.put(MAGIC)?;
        w.put(&key.digest().to_le_bytes())?;
        w.put(
            &u32::try_from(runs.len())
                .map_err(io::Error::other)?
                .to_le_bytes(),
        )?;
        for run in runs {
            w.put(&run.events().to_le_bytes())?;
            w.put(&(run.byte_len() as u64).to_le_bytes())?;
            w.put(run.as_bytes())?;
        }
        let checksum = w.hash;
        w.inner.write_all(&checksum.to_le_bytes())?;
        w.inner.flush()?;
    }
    std::fs::rename(&tmp, path)
}

fn invalid(reason: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason.to_string())
}

/// Load a benchmark's trace buffers from `path`, validating the magic,
/// the key digest, and the payload checksum.
///
/// Returns `Ok(None)` when the file does not exist (a cache miss).
///
/// # Errors
/// Returns an [`io::ErrorKind::InvalidData`] error for a stale key,
/// bad magic, or checksum mismatch — callers treat any error as an
/// invalid entry and re-capture.
pub fn load_trace(path: &Path, key: &TraceKey) -> io::Result<Option<Vec<TraceBuf>>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < MAGIC.len() + 8 + 4 + 8 {
        return Err(invalid("trace file truncated"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored_checksum = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    if hash_bytes(body) != stored_checksum {
        return Err(invalid("trace checksum mismatch"));
    }
    let mut r = body;
    let mut take = |n: usize| -> io::Result<&[u8]> {
        if r.len() < n {
            return Err(invalid("trace file truncated"));
        }
        let (head, rest) = r.split_at(n);
        r = rest;
        Ok(head)
    };
    if take(MAGIC.len())? != MAGIC {
        return Err(invalid("bad trace magic"));
    }
    let digest = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
    if digest != key.digest() {
        return Err(invalid("stale trace key"));
    }
    let run_count = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
    let mut runs = Vec::with_capacity(run_count as usize);
    for _ in 0..run_count {
        let events = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let len = usize::try_from(len).map_err(|_| invalid("run length overflow"))?;
        runs.push(TraceBuf::from_parts(take(len)?.to_vec(), events));
    }
    if !r.is_empty() {
        return Err(invalid("trailing bytes after last run"));
    }
    Ok(Some(runs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::Capture;
    use crate::{BranchEvent, BranchKind, ExecHooks};
    use branchlab_ir::{Addr, BlockId, BranchId, Cond, FuncId};

    fn sample_runs() -> Vec<TraceBuf> {
        let mut runs = Vec::new();
        for r in 0..3u32 {
            let mut cap = Capture::new();
            for i in 0..5u32 {
                cap.branch(&BranchEvent {
                    pc: Addr(10 + i),
                    kind: BranchKind::Cond,
                    taken: (i + r) % 2 == 0,
                    target: Addr(50),
                    fallthrough: Addr(11 + i),
                    branch: BranchId {
                        func: FuncId(0),
                        block: BlockId(i),
                    },
                    likely: false,
                    cond: Some(Cond::Ne),
                });
            }
            cap.call(Addr(99), FuncId(1));
            runs.push(cap.into_buf());
        }
        runs
    }

    fn key() -> TraceKey {
        TraceKey {
            bench: "wc".into(),
            program_hash: 0xdead_beef,
            scale: "test".into(),
            seed: 1989,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bltrace-test-{}", std::process::id()));
        let path = dir.join(key().file_name());
        let runs = sample_runs();
        save_trace(&path, &key(), &runs).unwrap();
        let loaded = load_trace(&path, &key()).unwrap().unwrap();
        assert_eq!(loaded, runs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_a_clean_miss() {
        let path = std::env::temp_dir().join("bltrace-does-not-exist.trace");
        assert!(load_trace(&path, &key()).unwrap().is_none());
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let dir = std::env::temp_dir().join(format!("bltrace-corrupt-{}", std::process::id()));
        let path = dir.join(key().file_name());
        save_trace(&path, &key(), &sample_runs()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_trace(&path, &key()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_key_is_rejected() {
        let dir = std::env::temp_dir().join(format!("bltrace-stale-{}", std::process::id()));
        let path = dir.join(key().file_name());
        save_trace(&path, &key(), &sample_runs()).unwrap();
        let stale = TraceKey {
            program_hash: 0x1234,
            ..key()
        };
        let err = load_trace(&path, &stale).unwrap_err();
        assert!(err.to_string().contains("stale"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_digest_covers_every_field() {
        let base = key();
        for other in [
            TraceKey {
                bench: "grep".into(),
                ..base.clone()
            },
            TraceKey {
                program_hash: 1,
                ..base.clone()
            },
            TraceKey {
                scale: "small".into(),
                ..base.clone()
            },
            TraceKey {
                seed: 7,
                ..base.clone()
            },
        ] {
            assert_ne!(other.digest(), base.digest(), "{other:?}");
        }
    }
}
