//! Statistics collectors over branch-event streams — the sources of the
//! paper's Table 1 (*Control* column) and Table 2.

use std::collections::HashMap;

use branchlab_ir::BranchId;

use crate::event::{BranchEvent, BranchKind, ExecHooks};

/// Table 2 source: the taken/not-taken mix of conditional branches and
/// the known/unknown-target mix of unconditional branches.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchMix {
    /// Taken conditional branches.
    pub cond_taken: u64,
    /// Not-taken conditional branches.
    pub cond_not_taken: u64,
    /// Unconditional branches with known target.
    pub uncond_known: u64,
    /// Unconditional branches with unknown (run-time) target.
    pub uncond_unknown: u64,
}

impl BranchMix {
    /// Create an empty mix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total conditional branches observed.
    #[must_use]
    pub fn cond_total(&self) -> u64 {
        self.cond_taken + self.cond_not_taken
    }

    /// Total unconditional branches observed.
    #[must_use]
    pub fn uncond_total(&self) -> u64 {
        self.uncond_known + self.uncond_unknown
    }

    /// Fraction of conditional branches that were taken (Table 2
    /// *Taken*), or 0 when none were observed.
    #[must_use]
    pub fn taken_fraction(&self) -> f64 {
        ratio(self.cond_taken, self.cond_total())
    }

    /// Fraction of unconditional branches with known targets (Table 2
    /// *Known*), or 0 when none were observed.
    #[must_use]
    pub fn known_fraction(&self) -> f64 {
        ratio(self.uncond_known, self.uncond_total())
    }

    /// Merge another mix into this one (multi-run accumulation).
    pub fn merge(&mut self, other: &BranchMix) {
        self.cond_taken += other.cond_taken;
        self.cond_not_taken += other.cond_not_taken;
        self.uncond_known += other.uncond_known;
        self.uncond_unknown += other.uncond_unknown;
    }
}

impl ExecHooks for BranchMix {
    fn branch(&mut self, ev: &BranchEvent) {
        match ev.kind {
            BranchKind::Cond => {
                if ev.taken {
                    self.cond_taken += 1;
                } else {
                    self.cond_not_taken += 1;
                }
            }
            BranchKind::UncondDirect => self.uncond_known += 1,
            BranchKind::UncondIndirect => self.uncond_unknown += 1,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Per-branch-site execution counts, keyed by the layout-stable
/// [`BranchId`]. This is the raw material of profile-guided prediction.
#[derive(Clone, Debug, Default)]
pub struct SiteStats {
    counts: HashMap<BranchId, SiteCounts>,
}

/// Taken/total counts for one static branch site.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteCounts {
    /// Times the branch was taken.
    pub taken: u64,
    /// Times the branch executed.
    pub total: u64,
}

impl SiteCounts {
    /// Empirical probability of being taken.
    #[must_use]
    pub fn taken_prob(&self) -> f64 {
        ratio(self.taken, self.total)
    }

    /// Executions matching the majority direction — the best any static
    /// (per-site, single-bit) predictor can do on this site.
    #[must_use]
    pub fn majority(&self) -> u64 {
        self.taken.max(self.total - self.taken)
    }
}

impl SiteStats {
    /// Create an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts for one site, if it ever executed.
    #[must_use]
    pub fn get(&self, site: BranchId) -> Option<SiteCounts> {
        self.counts.get(&site).copied()
    }

    /// Number of distinct sites observed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no sites were observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate over `(site, counts)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchId, SiteCounts)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }

    /// Merge another table into this one (multi-run accumulation).
    pub fn merge(&mut self, other: &SiteStats) {
        for (site, c) in other.iter() {
            let e = self.counts.entry(site).or_default();
            e.taken += c.taken;
            e.total += c.total;
        }
    }
}

impl ExecHooks for SiteStats {
    fn branch(&mut self, ev: &BranchEvent) {
        let e = self.counts.entry(ev.branch).or_default();
        e.total += 1;
        e.taken += u64::from(ev.taken);
    }
}

/// Bounded in-memory recording of branch events, for tests and debugging.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    events: Vec<BranchEvent>,
    capacity: usize,
    /// Events dropped after the recorder filled up.
    pub dropped: u64,
}

impl TraceRecorder {
    /// Record up to `capacity` events; later events are counted in
    /// [`TraceRecorder::dropped`] but not stored.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRecorder {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[BranchEvent] {
        &self.events
    }
}

impl ExecHooks for TraceRecorder {
    fn branch(&mut self, ev: &BranchEvent) {
        if self.events.len() < self.capacity {
            self.events.push(*ev);
        } else {
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchlab_ir::{Addr, BlockId, FuncId};

    fn ev(kind: BranchKind, taken: bool, block: u32) -> BranchEvent {
        BranchEvent {
            pc: Addr(block),
            kind,
            taken,
            target: Addr(100),
            fallthrough: Addr(block + 1),
            branch: BranchId {
                func: FuncId(0),
                block: BlockId(block),
            },
            likely: false,
            cond: if kind == BranchKind::Cond {
                Some(branchlab_ir::Cond::Eq)
            } else {
                None
            },
        }
    }

    #[test]
    fn branch_mix_classifies_events() {
        let mut mix = BranchMix::new();
        mix.branch(&ev(BranchKind::Cond, true, 0));
        mix.branch(&ev(BranchKind::Cond, false, 0));
        mix.branch(&ev(BranchKind::Cond, false, 0));
        mix.branch(&ev(BranchKind::UncondDirect, true, 1));
        mix.branch(&ev(BranchKind::UncondIndirect, true, 2));
        assert_eq!(mix.cond_total(), 3);
        assert!((mix.taken_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(mix.uncond_total(), 2);
        assert!((mix.known_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn branch_mix_empty_fractions_are_zero() {
        let mix = BranchMix::new();
        assert_eq!(mix.taken_fraction(), 0.0);
        assert_eq!(mix.known_fraction(), 0.0);
    }

    #[test]
    fn branch_mix_merge_adds() {
        let mut a = BranchMix {
            cond_taken: 1,
            cond_not_taken: 2,
            uncond_known: 3,
            uncond_unknown: 4,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.cond_taken, 2);
        assert_eq!(a.uncond_unknown, 8);
    }

    #[test]
    fn site_stats_tracks_per_site() {
        let mut s = SiteStats::new();
        for taken in [true, true, false] {
            s.branch(&ev(BranchKind::Cond, taken, 5));
        }
        s.branch(&ev(BranchKind::Cond, true, 9));
        let c5 = s
            .get(BranchId {
                func: FuncId(0),
                block: BlockId(5),
            })
            .unwrap();
        assert_eq!(c5, SiteCounts { taken: 2, total: 3 });
        assert_eq!(c5.majority(), 2);
        assert!((c5.taken_prob() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn site_stats_merge() {
        let mut a = SiteStats::new();
        let mut b = SiteStats::new();
        a.branch(&ev(BranchKind::Cond, true, 1));
        b.branch(&ev(BranchKind::Cond, false, 1));
        b.branch(&ev(BranchKind::Cond, false, 2));
        a.merge(&b);
        assert_eq!(
            a.get(BranchId {
                func: FuncId(0),
                block: BlockId(1)
            })
            .unwrap(),
            SiteCounts { taken: 1, total: 2 }
        );
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn majority_counts_dominant_direction() {
        let c = SiteCounts {
            taken: 1,
            total: 10,
        };
        assert_eq!(c.majority(), 9);
    }

    #[test]
    fn recorder_caps_and_counts_drops() {
        let mut r = TraceRecorder::with_capacity(2);
        for i in 0..5 {
            r.branch(&ev(BranchKind::Cond, true, i));
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.dropped, 3);
    }
}
