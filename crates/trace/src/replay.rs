//! Compact branch-trace capture and replay.
//!
//! The paper's own methodology is trace-driven: the benchmarks were
//! traced once and every scheme was scored off the recorded branch
//! stream. [`TraceBuf`] is that recording — one buffer per
//! (benchmark, layout, run) — storing every [`ExecHooks`] event
//! (branches, calls, returns) with delta-encoded PCs and LEB128
//! varint fields, typically 4–8 bytes per event. [`Capture`] adapts a
//! `TraceBuf` to `ExecHooks` so the interpreter fills it in a single
//! live pass, and [`replay`] feeds the recorded stream back into any
//! other `ExecHooks` sink (predictor evaluators, mix collectors, a
//! return-address stack) without re-interpreting the program.
//!
//! Replay is bit-exact: the reconstructed [`BranchEvent`]s compare
//! equal to the live ones field for field, so every statistics
//! collector produces identical results either way (enforced by the
//! `replay_fidelity` integration tests in `branchlab-experiments`).

use branchlab_ir::{Addr, BlockId, BranchId, Cond, FuncId};

use crate::event::{BranchEvent, BranchKind, ExecHooks};

/// Event tags (first byte of every record).
const TAG_COND: u8 = 0;
const TAG_UNCOND_DIRECT: u8 = 1;
const TAG_UNCOND_INDIRECT: u8 = 2;
const TAG_CALL: u8 = 3;
const TAG_RET: u8 = 4;

/// Flags byte layout for conditional branches.
const FLAG_TAKEN: u8 = 1 << 3;
const FLAG_LIKELY: u8 = 1 << 4;
const COND_MASK: u8 = 0b111;

fn cond_index(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Le => 3,
        Cond::Gt => 4,
        Cond::Ge => 5,
    }
}

fn cond_from_index(i: u8) -> Option<Cond> {
    Some(match i {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Le,
        4 => Cond::Gt,
        5 => Cond::Ge,
        _ => return None,
    })
}

fn push_varint(bytes: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            bytes.push(b);
            break;
        }
        bytes.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// One run's recorded event stream: delta-encoded PCs, varint fields.
///
/// Append with [`Capture`] (or the `record_*` methods), read back with
/// [`replay`]. Buffers are deterministic in the event stream, so equal
/// executions produce byte-identical buffers.
#[derive(Clone, Debug, Default)]
pub struct TraceBuf {
    bytes: Vec<u8>,
    events: u64,
    last_pc: u32,
}

/// Two buffers are equal when they decode to the same event stream —
/// i.e. same encoded bytes and event count; the transient encoder
/// state (`last_pc`) is excluded so a disk-loaded buffer compares
/// equal to the freshly captured one.
impl PartialEq for TraceBuf {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes && self.events == other.events
    }
}

impl Eq for TraceBuf {}

impl TraceBuf {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Encoded size in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The raw encoded stream (for on-disk caching).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuild a buffer from a stored byte stream and event count
    /// (the on-disk cache loader). The bytes are *not* validated here;
    /// [`replay`] reports corruption.
    #[must_use]
    pub fn from_parts(bytes: Vec<u8>, events: u64) -> Self {
        TraceBuf {
            bytes,
            events,
            last_pc: 0,
        }
    }

    fn push_pc(&mut self, pc: Addr) {
        push_varint(
            &mut self.bytes,
            zigzag(i64::from(pc.0) - i64::from(self.last_pc)),
        );
        self.last_pc = pc.0;
    }

    /// Record one executed branch.
    pub fn record_branch(&mut self, ev: &BranchEvent) {
        match ev.kind {
            BranchKind::Cond => {
                self.bytes.push(TAG_COND);
                let cond = ev.cond.map_or(COND_MASK, cond_index);
                let mut flags = cond;
                if ev.taken {
                    flags |= FLAG_TAKEN;
                }
                if ev.likely {
                    flags |= FLAG_LIKELY;
                }
                self.bytes.push(flags);
            }
            BranchKind::UncondDirect => self.bytes.push(TAG_UNCOND_DIRECT),
            BranchKind::UncondIndirect => self.bytes.push(TAG_UNCOND_INDIRECT),
        }
        self.push_pc(ev.pc);
        // fallthrough = pc + 1 + slots; slots is tiny, store it raw.
        push_varint(
            &mut self.bytes,
            u64::from(ev.fallthrough.0 - ev.pc.0).saturating_sub(1),
        );
        push_varint(
            &mut self.bytes,
            zigzag(i64::from(ev.target.0) - i64::from(ev.pc.0)),
        );
        push_varint(&mut self.bytes, u64::from(ev.branch.func.0));
        push_varint(&mut self.bytes, u64::from(ev.branch.block.0));
        self.events += 1;
    }

    /// Record one executed call.
    pub fn record_call(&mut self, from: Addr, callee: FuncId) {
        self.bytes.push(TAG_CALL);
        self.push_pc(from);
        push_varint(&mut self.bytes, u64::from(callee.0));
        self.events += 1;
    }

    /// Record one executed return.
    pub fn record_ret(&mut self, from: Addr, to: Addr) {
        self.bytes.push(TAG_RET);
        self.push_pc(from);
        push_varint(&mut self.bytes, zigzag(i64::from(to.0) - i64::from(from.0)));
        self.events += 1;
    }
}

/// [`ExecHooks`] adapter that records every event into a [`TraceBuf`].
///
/// Hand `&mut Capture` to the interpreter (optionally composed with
/// live sinks via the tuple impl) and take the buffer out afterwards.
#[derive(Clone, Debug, Default)]
pub struct Capture {
    /// The buffer being filled.
    pub buf: TraceBuf,
}

impl Capture {
    /// A capture with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the capture, yielding the recorded buffer.
    #[must_use]
    pub fn into_buf(self) -> TraceBuf {
        self.buf
    }
}

impl ExecHooks for Capture {
    fn branch(&mut self, ev: &BranchEvent) {
        self.buf.record_branch(ev);
    }
    fn call(&mut self, from: Addr, callee: FuncId) {
        self.buf.record_call(from, callee);
    }
    fn ret(&mut self, from: Addr, to: Addr) {
        self.buf.record_ret(from, to);
    }
}

/// A malformed trace buffer (truncated stream, out-of-range field).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayError {
    /// Byte offset of the record that failed to decode.
    pub offset: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt trace at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for ReplayError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn err(&self, reason: &'static str) -> ReplayError {
        ReplayError {
            offset: self.pos,
            reason,
        }
    }

    fn byte(&mut self) -> Result<u8, ReplayError> {
        let b = *self.bytes.get(self.pos).ok_or(ReplayError {
            offset: self.pos,
            reason: "truncated record",
        })?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, ReplayError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return Err(self.err("varint overflow"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn svarint(&mut self) -> Result<i64, ReplayError> {
        Ok(unzigzag(self.varint()?))
    }

    fn addr_from(&mut self, base: i64, delta: i64) -> Result<Addr, ReplayError> {
        u32::try_from(base + delta)
            .map(Addr)
            .map_err(|_| self.err("address out of range"))
    }
}

/// One decoded trace record, as yielded by [`TraceReader`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An executed branch (any [`BranchKind`]).
    Branch(BranchEvent),
    /// An executed call instruction.
    Call {
        /// Address of the call instruction.
        from: Addr,
        /// The function called into.
        callee: FuncId,
    },
    /// An executed return instruction.
    Ret {
        /// Address of the return instruction.
        from: Addr,
        /// The address control returns to.
        to: Addr,
    },
}

/// Streaming decoder over one [`TraceBuf`]'s records.
///
/// Pull one event at a time with [`TraceReader::next_event`]; the final
/// `Ok(None)` also validates the buffer's recorded event count. Several
/// readers can decode the same shared `&TraceBuf` concurrently — the
/// buffer is never mutated — which is what the parallel sweep executor
/// in `branchlab-experiments` relies on.
pub struct TraceReader<'a> {
    r: Reader<'a>,
    last_pc: i64,
    delivered: u64,
    expected: u64,
}

impl<'a> TraceReader<'a> {
    /// A reader positioned at the first record of `buf`.
    #[must_use]
    pub fn new(buf: &'a TraceBuf) -> Self {
        TraceReader {
            r: Reader {
                bytes: &buf.bytes,
                pos: 0,
            },
            last_pc: 0,
            delivered: 0,
            expected: buf.events,
        }
    }

    /// Events decoded so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Decode the next record, or `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    /// Returns [`ReplayError`] on a truncated or corrupt buffer,
    /// including an event count that does not match the stream.
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, ReplayError> {
        let r = &mut self.r;
        if r.pos >= r.bytes.len() {
            if self.delivered != self.expected {
                return Err(ReplayError {
                    offset: r.bytes.len(),
                    reason: "event count mismatch",
                });
            }
            return Ok(None);
        }
        let tag = r.byte()?;
        let event = match tag {
            TAG_COND | TAG_UNCOND_DIRECT | TAG_UNCOND_INDIRECT => {
                let (kind, taken, likely, cond) = if tag == TAG_COND {
                    let flags = r.byte()?;
                    let cond = cond_from_index(flags & COND_MASK);
                    (
                        BranchKind::Cond,
                        flags & FLAG_TAKEN != 0,
                        flags & FLAG_LIKELY != 0,
                        cond,
                    )
                } else if tag == TAG_UNCOND_DIRECT {
                    (BranchKind::UncondDirect, true, false, None)
                } else {
                    (BranchKind::UncondIndirect, true, false, None)
                };
                let pc_delta = r.svarint()?;
                let pc = r.addr_from(self.last_pc, pc_delta)?;
                self.last_pc = i64::from(pc.0);
                let slots = r.varint()?;
                let fallthrough = r.addr_from(i64::from(pc.0) + 1, slots as i64)?;
                let target_delta = r.svarint()?;
                let target = r.addr_from(i64::from(pc.0), target_delta)?;
                let func = u32::try_from(r.varint()?).map_err(|_| r.err("func id out of range"))?;
                let block =
                    u32::try_from(r.varint()?).map_err(|_| r.err("block id out of range"))?;
                TraceEvent::Branch(BranchEvent {
                    pc,
                    kind,
                    taken,
                    target,
                    fallthrough,
                    branch: BranchId {
                        func: FuncId(func),
                        block: BlockId(block),
                    },
                    likely,
                    cond,
                })
            }
            TAG_CALL => {
                let pc_delta = r.svarint()?;
                let from = r.addr_from(self.last_pc, pc_delta)?;
                self.last_pc = i64::from(from.0);
                let callee =
                    u32::try_from(r.varint()?).map_err(|_| r.err("callee id out of range"))?;
                TraceEvent::Call {
                    from,
                    callee: FuncId(callee),
                }
            }
            TAG_RET => {
                let pc_delta = r.svarint()?;
                let from = r.addr_from(self.last_pc, pc_delta)?;
                self.last_pc = i64::from(from.0);
                let to_delta = r.svarint()?;
                let to = r.addr_from(i64::from(from.0), to_delta)?;
                TraceEvent::Ret { from, to }
            }
            _ => return Err(r.err("unknown event tag")),
        };
        self.delivered += 1;
        Ok(Some(event))
    }
}

/// Replay a recorded run into `hooks`, reconstructing the exact event
/// stream the interpreter produced at capture time. Returns the number
/// of events delivered.
///
/// ```
/// use branchlab_trace::{replay, BranchMix, Capture, ExecHooks};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Capture a live run once …
/// let module = branchlab_minic::compile(
///     "int main() { int i; int s = 0; for (i = 0; i < 10; i++) { s += i; } return s; }",
/// )?;
/// let program = branchlab_ir::lower(&module)?;
/// let mut cap = Capture::new();
/// branchlab_interp::run(&program, &Default::default(), &[], &mut cap)?;
/// let buf = cap.into_buf();
///
/// // … then replay it into any sink, bit-identical to the live pass.
/// let mut mix = BranchMix::new();
/// let delivered = replay(&buf, &mut mix)?;
/// assert_eq!(delivered, buf.events());
/// assert!(mix.cond_total() > 0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// Returns [`ReplayError`] on a truncated or corrupt buffer (the event
/// count must also match the stream).
pub fn replay<H: ExecHooks>(buf: &TraceBuf, hooks: &mut H) -> Result<u64, ReplayError> {
    let mut reader = TraceReader::new(buf);
    while let Some(event) = reader.next_event()? {
        match event {
            TraceEvent::Branch(ev) => hooks.branch(&ev),
            TraceEvent::Call { from, callee } => hooks.call(from, callee),
            TraceEvent::Ret { from, to } => hooks.ret(from, to),
        }
    }
    Ok(reader.delivered())
}

/// [`replay`], recorded as a `replay_run` child span of `parent`
/// carrying the delivered event count as work. With `parent` `None`
/// this is exactly [`replay`] — no span, no overhead.
///
/// # Errors
/// Returns [`ReplayError`] on a truncated or corrupt buffer.
pub fn replay_traced<H: ExecHooks>(
    buf: &TraceBuf,
    hooks: &mut H,
    parent: Option<&branchlab_telemetry::SpanLink>,
) -> Result<u64, ReplayError> {
    let mut span = parent.map(|p| p.child("replay_run"));
    let delivered = replay(buf, hooks)?;
    if let Some(s) = span.as_mut() {
        s.add_work(delivered);
    }
    Ok(delivered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRecorder;

    fn branch(pc: u32, kind: BranchKind, taken: bool, target: u32, likely: bool) -> BranchEvent {
        BranchEvent {
            pc: Addr(pc),
            kind,
            taken,
            target: Addr(target),
            fallthrough: Addr(pc + 3),
            branch: BranchId {
                func: FuncId(pc % 5),
                block: BlockId(pc % 11),
            },
            likely,
            cond: if kind == BranchKind::Cond {
                Some(Cond::Lt)
            } else {
                None
            },
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut bytes = Vec::new();
            push_varint(&mut bytes, v);
            let mut r = Reader {
                bytes: &bytes,
                pos: 0,
            };
            assert_eq!(r.varint().unwrap(), v);
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::from(i32::MAX),
            i64::MIN,
            i64::MAX,
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn capture_replay_roundtrip_is_bit_exact() {
        let events = vec![
            branch(10, BranchKind::Cond, true, 50, true),
            branch(50, BranchKind::Cond, false, 10, false),
            branch(53, BranchKind::UncondDirect, true, 7, false),
            branch(7, BranchKind::UncondIndirect, true, 900, false),
        ];
        let mut cap = Capture::new();
        for ev in &events {
            cap.branch(ev);
        }
        cap.call(Addr(900), FuncId(3));
        cap.ret(Addr(950), Addr(901));
        let buf = cap.into_buf();
        assert_eq!(buf.events(), 6);

        struct All {
            rec: TraceRecorder,
            calls: Vec<(Addr, FuncId)>,
            rets: Vec<(Addr, Addr)>,
        }
        impl ExecHooks for All {
            fn branch(&mut self, ev: &BranchEvent) {
                self.rec.branch(ev);
            }
            fn call(&mut self, from: Addr, callee: FuncId) {
                self.calls.push((from, callee));
            }
            fn ret(&mut self, from: Addr, to: Addr) {
                self.rets.push((from, to));
            }
        }
        let mut all = All {
            rec: TraceRecorder::with_capacity(64),
            calls: Vec::new(),
            rets: Vec::new(),
        };
        let n = replay(&buf, &mut all).unwrap();
        assert_eq!(n, 6);
        assert_eq!(all.rec.events(), events.as_slice());
        assert_eq!(all.calls, vec![(Addr(900), FuncId(3))]);
        assert_eq!(all.rets, vec![(Addr(950), Addr(901))]);
    }

    #[test]
    fn encoding_is_compact() {
        let mut cap = Capture::new();
        // A tight loop: same branch taken 1000 times.
        for _ in 0..1000 {
            cap.branch(&branch(64, BranchKind::Cond, true, 60, true));
        }
        let buf = cap.into_buf();
        // Tag + flags + pc delta (0 after first) + slots + target + ids.
        assert!(
            buf.byte_len() <= 8 * 1000,
            "encoding too large: {} bytes for 1000 events",
            buf.byte_len()
        );
    }

    #[test]
    fn truncated_buffer_is_reported() {
        let mut cap = Capture::new();
        cap.branch(&branch(10, BranchKind::Cond, true, 50, false));
        let buf = cap.into_buf();
        let cut = TraceBuf::from_parts(buf.as_bytes()[..buf.byte_len() - 2].to_vec(), 1);
        let err = replay(&cut, &mut ()).unwrap_err();
        assert_eq!(err.reason, "truncated record");
        assert!(err.to_string().contains("corrupt trace"));
    }

    #[test]
    fn unknown_tag_is_reported() {
        let bad = TraceBuf::from_parts(vec![0xee], 1);
        assert_eq!(
            replay(&bad, &mut ()).unwrap_err().reason,
            "unknown event tag"
        );
    }

    #[test]
    fn event_count_mismatch_is_reported() {
        let mut cap = Capture::new();
        cap.call(Addr(1), FuncId(0));
        let buf = cap.into_buf();
        let lied = TraceBuf::from_parts(buf.as_bytes().to_vec(), 2);
        assert_eq!(
            replay(&lied, &mut ()).unwrap_err().reason,
            "event count mismatch"
        );
    }
}
