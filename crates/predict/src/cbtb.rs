//! The Counter-based Branch Target Buffer (CBTB) of the paper's §2.2,
//! using J. E. Smith's saturating up/down counter per entry.
//!
//! All branches (taken or not) are eligible for residence. A new entry's
//! n-bit counter is initialized to the threshold `T` on a taken fill and
//! `T − 1` on a not-taken fill; it then saturates at `0` and `2ⁿ − 1`.
//! A resident branch is predicted taken when its counter reaches the
//! threshold.
//!
//! The paper's text says "predicted taken when C > T", which with the
//! stated T = 2 would make a just-inserted taken branch predict
//! *not-taken* — contradicting both the cited Smith scheme and the
//! initialization rule. We read it as `C ≥ T` (see DESIGN.md);
//! [`CbtbConfig::strict_greater`] restores the literal reading for
//! sensitivity experiments.

use branchlab_ir::Addr;
use branchlab_telemetry::{NoopSink, ProbeEvent, ProbeKind, TelemetrySink};
use branchlab_trace::BranchEvent;

use crate::assoc::AssocBuffer;
use crate::lanes::{saturating_step, LaneSpec};
use crate::predictor::{BranchPredictor, Prediction, TargetInfo};

/// CBTB geometry and counter parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CbtbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity (ways per set); `entries` for fully associative.
    pub ways: usize,
    /// Counter width in bits (the paper uses 2).
    pub counter_bits: u8,
    /// Prediction threshold `T` (the paper uses 2).
    pub threshold: u8,
    /// Predict taken only when `C > T` (the paper's literal text) instead
    /// of `C ≥ T` (the reading consistent with Smith's scheme).
    pub strict_greater: bool,
}

impl CbtbConfig {
    /// The paper's configuration: 256 entries, fully associative, 2-bit
    /// counters, T = 2.
    #[must_use]
    pub fn paper() -> Self {
        CbtbConfig {
            entries: 256,
            ways: 256,
            counter_bits: 2,
            threshold: 2,
            strict_greater: false,
        }
    }

    fn counter_max(&self) -> u8 {
        ((1u16 << self.counter_bits) - 1) as u8
    }
}

impl Default for CbtbConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One CBTB entry.
#[derive(Copy, Clone, Debug)]
struct CbtbEntry {
    counter: u8,
    target: Addr,
}

/// The Counter-based Branch Target Buffer.
///
/// Generic over a [`TelemetrySink`]; the default [`NoopSink`] keeps
/// `enabled()` constant-false, so the uninstrumented predictor
/// monomorphizes with no probe code on the hot path.
///
/// Construct with the paper's parameters and score it over a live run
/// via [`Evaluator`](crate::Evaluator):
///
/// ```
/// use branchlab_predict::{Cbtb, Evaluator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let module = branchlab_minic::compile(
///     "int main() { int i; int s = 0; for (i = 0; i < 100; i++) { s += i; } return s; }",
/// )?;
/// let program = branchlab_ir::lower(&module)?;
///
/// let mut eval = Evaluator::new(Cbtb::paper());
/// branchlab_interp::run(&program, &Default::default(), &[], &mut eval)?;
///
/// // The 2-bit counters hold the loop branch at "taken" through its
/// // single not-taken exit, so accuracy stays high.
/// assert!(eval.stats.accuracy() > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Cbtb<S: TelemetrySink = NoopSink> {
    buf: AssocBuffer<CbtbEntry>,
    config: CbtbConfig,
    sink: S,
    /// `(pc, way)` of the entry the last `predict` hit, so `update` can
    /// revisit it without a second buffer search.
    last_hit: Option<(u32, u32)>,
}

impl Cbtb {
    /// Build a CBTB.
    ///
    /// # Panics
    /// Panics on invalid geometry, zero-width counters, counters wider
    /// than 7 bits, or a threshold outside the counter range.
    #[must_use]
    pub fn new(config: CbtbConfig) -> Self {
        Self::with_sink(config, NoopSink)
    }

    /// The paper's 256-entry fully-associative 2-bit CBTB with T = 2.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(CbtbConfig::paper())
    }
}

impl<S: TelemetrySink> Cbtb<S> {
    /// Build a CBTB that publishes probe events to `sink`.
    ///
    /// # Panics
    /// Panics on invalid geometry, zero-width counters, counters wider
    /// than 7 bits, or a threshold outside the counter range.
    #[must_use]
    pub fn with_sink(config: CbtbConfig, sink: S) -> Self {
        assert!(
            config.ways > 0 && config.entries.is_multiple_of(config.ways),
            "entries must be a multiple of ways"
        );
        assert!(
            (1..=7).contains(&config.counter_bits),
            "counter bits must be in 1..=7"
        );
        assert!(
            config.threshold >= 1 && config.threshold <= config.counter_max(),
            "threshold must be in 1..=counter max"
        );
        Cbtb {
            buf: AssocBuffer::new(config.entries / config.ways, config.ways),
            config,
            sink,
            last_hit: None,
        }
    }

    /// Resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The telemetry sink.
    #[must_use]
    pub fn sink(&self) -> &S {
        &self.sink
    }

    fn predicts_taken(&self, counter: u8) -> bool {
        if self.config.strict_greater {
            counter > self.config.threshold
        } else {
            counter >= self.config.threshold
        }
    }

    #[inline]
    fn probe(&mut self, site: u32, kind: ProbeKind) {
        if self.sink.enabled() {
            self.sink.emit(ProbeEvent { site, kind });
        }
    }
}

impl Default for Cbtb {
    fn default() -> Self {
        Self::paper()
    }
}

impl<S: TelemetrySink> BranchPredictor for Cbtb<S> {
    fn name(&self) -> &'static str {
        "CBTB"
    }

    fn predict(&mut self, ev: &BranchEvent) -> Prediction {
        // One search serves lookup, LRU refresh, and (via the remembered
        // way) the counter update that follows.
        let hit = self.buf.lookup_pos(ev.pc.0).map(|(way, e)| (way, *e));
        self.last_hit = hit.map(|(way, _)| (ev.pc.0, way));
        match hit {
            Some((_, entry)) => {
                self.probe(ev.pc.0, ProbeKind::Hit);
                Prediction {
                    taken: self.predicts_taken(entry.counter),
                    target: TargetInfo::Addr(entry.target),
                    hit: Some(true),
                }
            }
            None => {
                self.probe(ev.pc.0, ProbeKind::Miss);
                Prediction {
                    taken: false,
                    target: TargetInfo::None,
                    hit: Some(false),
                }
            }
        }
    }

    fn update(&mut self, ev: &BranchEvent, pred: &Prediction) {
        if self.sink.enabled() {
            let kind = if ev.taken {
                ProbeKind::Taken
            } else {
                ProbeKind::NotTaken
            };
            self.sink.emit(ProbeEvent {
                site: ev.pc.0,
                kind,
            });
            if !pred.is_correct(ev) {
                self.sink.emit(ProbeEvent {
                    site: ev.pc.0,
                    kind: ProbeKind::Mispredict,
                });
            }
            if ev.taken {
                if let Some(entry) = self.buf.peek(ev.pc.0) {
                    if entry.target != ev.target {
                        self.sink.emit(ProbeEvent {
                            site: ev.pc.0,
                            kind: ProbeKind::Alias,
                        });
                    }
                }
            }
        }
        let max = self.config.counter_max();
        let entry = match self.last_hit.take() {
            // predict already found this entry; revisit it directly.
            Some((pc, way)) if pc == ev.pc.0 => self.buf.touch(pc, way),
            _ => self.buf.lookup(ev.pc.0),
        };
        if let Some(entry) = entry {
            entry.counter = saturating_step(entry.counter, max, ev.taken);
            if ev.taken {
                entry.target = ev.target;
            }
        } else {
            let counter = if ev.taken {
                self.config.threshold
            } else {
                self.config.threshold - 1
            };
            if let Some((victim, _)) = self.buf.insert(
                ev.pc.0,
                CbtbEntry {
                    counter,
                    target: ev.target,
                },
            ) {
                self.probe(victim, ProbeKind::Evict);
            }
        }
    }

    fn flush(&mut self) {
        self.buf.flush();
        self.last_hit = None;
    }

    fn lane_spec(&self) -> Option<LaneSpec> {
        // A probe sink observes per-event effects the lane engine does
        // not replay, and a non-empty buffer means state has diverged
        // from the fresh configuration the spec describes.
        (!self.sink.enabled() && self.buf.is_empty()).then_some(LaneSpec::Cbtb(self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_util::{cond, cond_to};
    use crate::predictor::Evaluator;
    use branchlab_trace::ExecHooks;

    fn drive(c: Cbtb, outcomes: &[bool]) -> Evaluator<Cbtb> {
        let mut e = Evaluator::new(c);
        for &taken in outcomes {
            e.branch(&cond_to(10, taken, 50));
        }
        e
    }

    #[test]
    fn all_branches_enter_the_buffer() {
        let mut e = Evaluator::new(Cbtb::paper());
        e.branch(&cond(10, false)); // not-taken still inserted
        assert_eq!(e.predictor.len(), 1);
    }

    #[test]
    fn fresh_taken_entry_predicts_taken() {
        // taken (miss→insert at T), then taken again → predicted taken.
        let e = drive(Cbtb::paper(), &[true, true]);
        assert_eq!(e.stats.correct, 1);
    }

    #[test]
    fn fresh_not_taken_entry_predicts_not_taken() {
        let e = drive(Cbtb::paper(), &[false, false]);
        // First is a correct not-taken miss, second a correct hit.
        assert_eq!(e.stats.correct, 2);
        assert_eq!(e.stats.btb_misses, 1);
    }

    #[test]
    fn counter_saturates_and_tolerates_one_anomaly() {
        // Long taken run saturates at 3; one not-taken dip (to 2) must
        // not flip the prediction (the 2-bit counter's hysteresis).
        let mut outcomes = vec![true; 10];
        outcomes.push(false);
        outcomes.push(true); // still predicted taken → correct
        let e = drive(Cbtb::paper(), &outcomes);
        // Events: 1 miss-wrong + 9 correct taken + 1 wrong not-taken + 1 correct.
        assert_eq!(e.stats.events, 12);
        assert_eq!(e.stats.correct, 10);
    }

    #[test]
    fn two_anomalies_flip_the_prediction() {
        // saturate taken, then two not-taken (3→2→1), next prediction is
        // not-taken.
        let mut e = drive(Cbtb::paper(), &[true, true, true, true, false, false]);
        e.branch(&cond_to(10, false, 50));
        // That last event should be predicted not-taken → correct.
        assert_eq!(e.stats.correct, 3 + 1);
    }

    #[test]
    fn alternating_pattern_defeats_counters() {
        // T,N,T,N… the counter oscillates around the threshold.
        let outcomes: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let e = drive(Cbtb::paper(), &outcomes);
        assert!(
            e.stats.accuracy() < 0.6,
            "alternation should be hard: {}",
            e.stats.accuracy()
        );
    }

    #[test]
    fn strict_greater_reading_hurts_fresh_entries() {
        let cfg = CbtbConfig {
            strict_greater: true,
            ..CbtbConfig::paper()
        };
        let strict = drive(Cbtb::new(cfg), &[true, true, true]);
        let lenient = drive(Cbtb::paper(), &[true, true, true]);
        assert!(strict.stats.correct < lenient.stats.correct);
    }

    #[test]
    fn stale_target_counts_as_misprediction() {
        let mut e = Evaluator::new(Cbtb::paper());
        e.branch(&cond_to(10, true, 100));
        e.branch(&cond_to(10, true, 100)); // correct
        e.branch(&cond_to(10, true, 999)); // predicted taken but old target
        assert_eq!(e.stats.correct, 1);
        // Target refreshed after the update.
        e.branch(&cond_to(10, true, 999));
        assert_eq!(e.stats.correct, 2);
    }

    #[test]
    fn miss_ratio_much_lower_than_sbtb_on_mixed_branches() {
        // A branch that is never taken stays resident in the CBTB
        // (misses once) but would never enter an SBTB (misses always).
        let e = drive(Cbtb::paper(), &[false; 50]);
        assert_eq!(e.stats.btb_misses, 1);
        assert!((e.stats.miss_ratio() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn counter_bits_sweep_is_constructible() {
        for bits in 1..=4u8 {
            let cfg = CbtbConfig {
                counter_bits: bits,
                threshold: 1 << (bits - 1),
                ..CbtbConfig::paper()
            };
            let _ = Cbtb::new(cfg);
        }
    }

    #[test]
    fn site_probe_sees_residence_and_mispredicts() {
        use branchlab_telemetry::SiteProbe;
        let mut e = Evaluator::new(Cbtb::with_sink(CbtbConfig::paper(), SiteProbe::enabled()));
        e.branch(&cond_to(10, true, 50)); // miss (wrong), insert at T
        e.branch(&cond_to(10, true, 50)); // hit, correct
        e.branch(&cond_to(10, false, 50)); // hit, predicted taken → wrong
        let probe = e.predictor.sink();
        let c = probe.sites()[&10];
        assert_eq!((c.hits, c.misses), (2, 1));
        assert_eq!((c.taken, c.not_taken), (2, 1));
        assert_eq!(c.mispredicts, 2);
        assert_eq!(c.evicts, 0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_above_counter_max_rejected() {
        let _ = Cbtb::new(CbtbConfig {
            counter_bits: 2,
            threshold: 4,
            ..CbtbConfig::paper()
        });
    }
}
