//! The Simple Branch Target Buffer (SBTB) of the paper's §2.2.
//!
//! A cache of *taken* branches, tagged by branch address. A hit predicts
//! taken with the stored target (the hardware also stores the first `k`
//! target instructions; that latency effect is the cost model's job).
//! A miss predicts not-taken. An entry whose branch executes not-taken
//! is deleted.

use branchlab_ir::Addr;
use branchlab_telemetry::{NoopSink, ProbeEvent, ProbeKind, TelemetrySink};
use branchlab_trace::BranchEvent;

use crate::assoc::AssocBuffer;
use crate::predictor::{BranchPredictor, Prediction, TargetInfo};

/// SBTB geometry.
#[derive(Copy, Clone, Debug)]
pub struct SbtbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity (ways per set); `entries` for fully associative.
    pub ways: usize,
}

impl SbtbConfig {
    /// The paper's configuration: 256 entries, fully associative, LRU.
    #[must_use]
    pub fn paper() -> Self {
        SbtbConfig {
            entries: 256,
            ways: 256,
        }
    }
}

impl Default for SbtbConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The Simple Branch Target Buffer.
///
/// Generic over a [`TelemetrySink`]; the default [`NoopSink`] keeps
/// `enabled()` constant-false, so the uninstrumented predictor
/// monomorphizes with no probe code on the hot path.
///
/// Construct with the paper's geometry (or any [`SbtbConfig`]) and score
/// it over a live run via [`Evaluator`](crate::Evaluator):
///
/// ```
/// use branchlab_predict::{Evaluator, Sbtb, SbtbConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let module = branchlab_minic::compile(
///     "int main() { int i; int s = 0; for (i = 0; i < 100; i++) { s += i; } return s; }",
/// )?;
/// let program = branchlab_ir::lower(&module)?;
///
/// let mut eval = Evaluator::new(Sbtb::new(SbtbConfig {
///     entries: 64,
///     ways: 64,
/// }));
/// branchlab_interp::run(&program, &Default::default(), &[], &mut eval)?;
///
/// // A repetitive loop is an easy target for a buffer of taken
/// // branches: direction plus stored target are almost always right.
/// assert!(eval.stats.accuracy() > 0.9);
/// assert!(eval.stats.btb_lookups > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Sbtb<S: TelemetrySink = NoopSink> {
    buf: AssocBuffer<Addr>,
    sink: S,
    /// `(pc, way)` of the entry the last `predict` hit, so `update` can
    /// revisit it without a second buffer search.
    last_hit: Option<(u32, u32)>,
}

impl Sbtb {
    /// Build an SBTB with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry is invalid (`entries` not divisible by
    /// `ways`, set count not a power of two, zero sizes).
    #[must_use]
    pub fn new(config: SbtbConfig) -> Self {
        Self::with_sink(config, NoopSink)
    }

    /// The paper's 256-entry fully-associative SBTB.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(SbtbConfig::paper())
    }
}

impl<S: TelemetrySink> Sbtb<S> {
    /// Build an SBTB that publishes probe events to `sink`.
    ///
    /// # Panics
    /// Panics if the geometry is invalid (`entries` not divisible by
    /// `ways`, set count not a power of two, zero sizes).
    #[must_use]
    pub fn with_sink(config: SbtbConfig, sink: S) -> Self {
        assert!(
            config.ways > 0 && config.entries.is_multiple_of(config.ways),
            "entries must be a multiple of ways"
        );
        Sbtb {
            buf: AssocBuffer::new(config.entries / config.ways, config.ways),
            sink,
            last_hit: None,
        }
    }

    /// Resident entries (for tests and occupancy studies).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The telemetry sink.
    #[must_use]
    pub fn sink(&self) -> &S {
        &self.sink
    }

    #[inline]
    fn probe(&mut self, site: u32, kind: ProbeKind) {
        if self.sink.enabled() {
            self.sink.emit(ProbeEvent { site, kind });
        }
    }
}

impl Default for Sbtb {
    fn default() -> Self {
        Self::paper()
    }
}

impl<S: TelemetrySink> BranchPredictor for Sbtb<S> {
    fn name(&self) -> &'static str {
        "SBTB"
    }

    fn predict(&mut self, ev: &BranchEvent) -> Prediction {
        let hit = self.buf.lookup_pos(ev.pc.0).map(|(way, t)| (way, *t));
        self.last_hit = hit.map(|(way, _)| (ev.pc.0, way));
        match hit.map(|(_, t)| t) {
            Some(target) => {
                self.probe(ev.pc.0, ProbeKind::Hit);
                Prediction {
                    taken: true,
                    target: TargetInfo::Addr(target),
                    hit: Some(true),
                }
            }
            None => {
                self.probe(ev.pc.0, ProbeKind::Miss);
                Prediction {
                    taken: false,
                    target: TargetInfo::None,
                    hit: Some(false),
                }
            }
        }
    }

    fn update(&mut self, ev: &BranchEvent, pred: &Prediction) {
        if self.sink.enabled() {
            let kind = if ev.taken {
                ProbeKind::Taken
            } else {
                ProbeKind::NotTaken
            };
            self.sink.emit(ProbeEvent {
                site: ev.pc.0,
                kind,
            });
            if !pred.is_correct(ev) {
                self.sink.emit(ProbeEvent {
                    site: ev.pc.0,
                    kind: ProbeKind::Mispredict,
                });
            }
            if ev.taken {
                if let Some(&old) = self.buf.peek(ev.pc.0) {
                    if old != ev.target {
                        self.sink.emit(ProbeEvent {
                            site: ev.pc.0,
                            kind: ProbeKind::Alias,
                        });
                    }
                }
            }
        }
        let cached_way = match self.last_hit.take() {
            Some((pc, way)) if pc == ev.pc.0 => Some(way),
            _ => None,
        };
        if ev.taken {
            // Remember (or refresh) the taken branch and its target; a
            // predict-time hit already knows the way, skipping the search.
            if let Some(way) = cached_way {
                if let Some(target) = self.buf.touch(ev.pc.0, way) {
                    *target = ev.target;
                    return;
                }
            }
            if let Some((victim, _)) = self.buf.insert(ev.pc.0, ev.target) {
                self.probe(victim, ProbeKind::Evict);
            }
        } else if pred.hit == Some(true) {
            // Predicted taken but fell through: delete the entry (§2.2).
            if cached_way.is_none_or(|way| self.buf.remove_at(ev.pc.0, way).is_none()) {
                self.buf.remove(ev.pc.0);
            }
        }
    }

    fn flush(&mut self) {
        self.buf.flush();
        self.last_hit = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_util::{cond, cond_to, indirect, jmp};
    use crate::predictor::Evaluator;
    use branchlab_trace::ExecHooks;

    fn drive(sbtb: Sbtb, events: &[BranchEvent]) -> Evaluator<Sbtb> {
        let mut e = Evaluator::new(sbtb);
        for ev in events {
            e.branch(ev);
        }
        e
    }

    #[test]
    fn miss_predicts_not_taken() {
        let e = drive(Sbtb::paper(), &[cond(10, false)]);
        assert_eq!(e.stats.correct, 1);
        assert_eq!(e.stats.btb_misses, 1);
    }

    #[test]
    fn only_taken_branches_enter_the_buffer() {
        let mut s = Sbtb::paper();
        let mut e = Evaluator::new(s);
        e.branch(&cond(10, false));
        assert_eq!(e.predictor.len(), 0);
        e.branch(&cond(10, true));
        assert_eq!(e.predictor.len(), 1);
        s = e.predictor;
        assert!(s.buf.peek(10).is_some());
    }

    #[test]
    fn hit_predicts_taken_with_stored_target() {
        // taken once (miss, inserted), then taken again (hit, correct).
        let e = drive(
            Sbtb::paper(),
            &[cond_to(10, true, 50), cond_to(10, true, 50)],
        );
        assert_eq!(e.stats.events, 2);
        assert_eq!(e.stats.correct, 1); // first was a mispredicted miss
        assert_eq!(e.stats.btb_misses, 1);
        assert_eq!(e.stats.btb_lookups, 2);
    }

    #[test]
    fn mispredicted_taken_deletes_entry() {
        let mut e = Evaluator::new(Sbtb::paper());
        e.branch(&cond(10, true)); // inserted
        e.branch(&cond(10, false)); // hit, predicted taken, wrong → deleted
        assert_eq!(e.predictor.len(), 0);
        // Next not-taken is a miss and correctly predicted.
        e.branch(&cond(10, false));
        assert_eq!(e.stats.correct, 1);
    }

    #[test]
    fn loop_branch_accuracy_converges() {
        // 100 iterations of a taken loop branch: first is wrong, rest hit.
        let events: Vec<_> = (0..100).map(|_| cond_to(10, true, 5)).collect();
        let e = drive(Sbtb::paper(), &events);
        assert_eq!(e.stats.correct, 99);
    }

    #[test]
    fn indirect_jump_correct_only_when_target_repeats() {
        let e = drive(
            Sbtb::paper(),
            &[indirect(10, 100), indirect(10, 100), indirect(10, 200)],
        );
        // miss(wrong), hit target 100 (right), hit stale 100 vs actual 200 (wrong)
        assert_eq!(e.stats.correct, 1);
    }

    #[test]
    fn unconditional_direct_jump_settles_after_first_miss() {
        let e = drive(Sbtb::paper(), &[jmp(10, 7), jmp(10, 7), jmp(10, 7)]);
        assert_eq!(e.stats.correct, 2);
    }

    #[test]
    fn capacity_pressure_evicts_lru_and_costs_accuracy() {
        // 4-entry SBTB, 8 distinct always-taken branches, round-robin:
        // every access misses once warm capacity is exceeded.
        let mut e = Evaluator::new(Sbtb::new(SbtbConfig {
            entries: 4,
            ways: 4,
        }));
        for round in 0..4 {
            for pc in 0..8u32 {
                e.branch(&cond_to(pc * 16, true, 500));
            }
            let _ = round;
        }
        // Working set (8) exceeds capacity (4) with LRU + round-robin →
        // every single access misses.
        assert_eq!(e.stats.btb_misses, 32);
        assert_eq!(e.stats.correct, 0);
    }

    #[test]
    fn site_probe_counts_hits_misses_and_evictions() {
        use branchlab_telemetry::SiteProbe;
        let mut e = Evaluator::new(Sbtb::with_sink(
            SbtbConfig {
                entries: 1,
                ways: 1,
            },
            SiteProbe::enabled(),
        ));
        e.branch(&cond_to(10, true, 50)); // miss, insert
        e.branch(&cond_to(10, true, 50)); // hit, correct
        e.branch(&cond_to(10, true, 99)); // hit, stale target → alias
        e.branch(&cond_to(26, true, 7)); // miss, insert evicts site 10
        let probe = e.predictor.sink();
        let site10 = probe.sites()[&10];
        assert_eq!(site10.hits, 2);
        assert_eq!(site10.misses, 1);
        assert_eq!(site10.evicts, 1, "site 10 was the eviction victim");
        assert_eq!(site10.aliases, 1);
        assert_eq!(site10.taken, 3);
        assert_eq!(site10.mispredicts, 2); // first miss + stale target
        assert_eq!(probe.sites()[&26].misses, 1);
    }

    #[test]
    fn flush_empties_buffer() {
        let mut s = Sbtb::paper();
        let p = s.predict(&cond(10, true));
        s.update(&cond(10, true), &p);
        assert_eq!(s.len(), 1);
        s.flush();
        assert!(s.is_empty());
    }
}
