//! A set-associative buffer with true-LRU replacement — the storage
//! substrate of the SBTB and CBTB. The paper's configuration (256-entry
//! fully associative) is `AssocBuffer::fully_associative(256)`; the
//! ablation benches sweep sizes and associativities.

/// A set-associative, true-LRU key→value buffer keyed by `u32` (branch
/// instruction addresses).
#[derive(Clone, Debug)]
pub struct AssocBuffer<V> {
    sets: Vec<Vec<Entry<V>>>,
    ways: usize,
    set_mask: u32,
    stamp: u64,
}

#[derive(Clone, Debug)]
struct Entry<V> {
    key: u32,
    value: V,
    stamp: u64,
}

impl<V> AssocBuffer<V> {
    /// A buffer with `sets × ways` entries.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two, or either argument is 0.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "sets and ways must be positive");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        AssocBuffer {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            set_mask: (sets - 1) as u32,
            stamp: 0,
        }
    }

    /// A fully-associative buffer with `entries` entries.
    ///
    /// # Panics
    /// Panics if `entries` is 0.
    #[must_use]
    pub fn fully_associative(entries: usize) -> Self {
        Self::new(1, entries)
    }

    /// Total capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    fn set_index(&self, key: u32) -> usize {
        (key & self.set_mask) as usize
    }

    /// Look up `key`, refreshing its LRU position on a hit.
    pub fn lookup(&mut self, key: u32) -> Option<&mut V> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_index(key);
        self.sets[set].iter_mut().find(|e| e.key == key).map(|e| {
            e.stamp = stamp;
            &mut e.value
        })
    }

    /// Look up `key` without touching LRU state.
    #[must_use]
    pub fn peek(&self, key: u32) -> Option<&V> {
        let set = self.set_index(key);
        self.sets[set]
            .iter()
            .find(|e| e.key == key)
            .map(|e| &e.value)
    }

    /// Insert or overwrite `key`, evicting the least-recently-used entry
    /// of a full set. Returns the evicted `(key, value)`, if any.
    pub fn insert(&mut self, key: u32, value: V) -> Option<(u32, V)> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set_idx = self.set_index(key);
        let set = &mut self.sets[set_idx];
        if let Some(e) = set.iter_mut().find(|e| e.key == key) {
            e.value = value;
            e.stamp = stamp;
            return None;
        }
        if set.len() < self.ways {
            set.push(Entry { key, value, stamp });
            return None;
        }
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(i, _)| i)
            .expect("full set is nonempty");
        let old = std::mem::replace(&mut set[victim], Entry { key, value, stamp });
        Some((old.key, old.value))
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&mut self, key: u32) -> Option<V> {
        let set_idx = self.set_index(key);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|e| e.key == key)?;
        Some(set.swap_remove(pos).value)
    }

    /// Discard all entries (context switch).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_lookup_hits() {
        let mut b = AssocBuffer::fully_associative(4);
        assert!(b.insert(10, "a").is_none());
        assert_eq!(b.lookup(10), Some(&mut "a"));
        assert_eq!(b.lookup(11), None);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut b = AssocBuffer::fully_associative(2);
        b.insert(1, 1);
        b.insert(2, 2);
        b.lookup(1); // 2 is now LRU
        let evicted = b.insert(3, 3);
        assert_eq!(evicted, Some((2, 2)));
        assert!(b.peek(1).is_some());
        assert!(b.peek(3).is_some());
        assert!(b.peek(2).is_none());
    }

    #[test]
    fn insert_existing_key_overwrites_without_eviction() {
        let mut b = AssocBuffer::fully_associative(2);
        b.insert(1, 1);
        b.insert(2, 2);
        assert!(b.insert(1, 100).is_none());
        assert_eq!(b.peek(1), Some(&100));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut b = AssocBuffer::fully_associative(8);
        for k in 0..100 {
            b.insert(k, k);
            assert!(b.len() <= 8);
        }
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn set_associative_maps_keys_to_sets() {
        // 4 sets × 1 way: keys 0 and 4 collide (same set), 0 and 1 don't.
        let mut b = AssocBuffer::new(4, 1);
        b.insert(0, "zero");
        b.insert(1, "one");
        assert_eq!(b.len(), 2);
        let evicted = b.insert(4, "four");
        assert_eq!(evicted, Some((0, "zero")));
        assert_eq!(b.peek(1), Some(&"one"));
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut b = AssocBuffer::fully_associative(2);
        b.insert(1, 1);
        b.insert(2, 2);
        let _ = b.peek(1); // does NOT protect 1
        let evicted = b.insert(3, 3);
        assert_eq!(evicted, Some((1, 1)));
    }

    #[test]
    fn remove_and_flush() {
        let mut b = AssocBuffer::fully_associative(4);
        b.insert(1, 1);
        b.insert(2, 2);
        assert_eq!(b.remove(1), Some(1));
        assert_eq!(b.remove(1), None);
        b.flush();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = AssocBuffer::<()>::new(3, 2);
    }
}
