//! A set-associative buffer with true-LRU replacement — the storage
//! substrate of the SBTB and CBTB. The paper's configuration (256-entry
//! fully associative) is `AssocBuffer::fully_associative(256)`; the
//! ablation benches sweep sizes and associativities.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// Sets wider than this keep a key→way hash index so lookups stay O(1);
/// narrower sets are scanned linearly (cheaper than any hash for a
/// handful of entries). The fully-associative paper configs (256–1024
/// ways) are the ones the index exists for.
const INDEXED_WAYS_MIN: usize = 8;

/// Multiply-xorshift hasher for small integer keys (branch addresses,
/// site ids) — `SipHash`'s keyed setup costs more than the whole probe
/// for these tiny keys. Shared by every per-event hash lookup in the
/// crate.
#[derive(Clone, Debug, Default)]
pub(crate) struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u32(u32::from(b));
        }
    }

    fn write_u32(&mut self, v: u32) {
        let x = (self.0 ^ u64::from(v)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 29);
    }
}

#[derive(Clone, Debug, Default)]
pub(crate) struct BuildKeyHasher;

impl BuildHasher for BuildKeyHasher {
    type Hasher = KeyHasher;

    fn build_hasher(&self) -> KeyHasher {
        KeyHasher::default()
    }
}

/// A set-associative, true-LRU key→value buffer keyed by `u32` (branch
/// instruction addresses).
#[derive(Clone, Debug)]
pub struct AssocBuffer<V> {
    sets: Vec<Vec<Entry<V>>>,
    ways: usize,
    set_mask: u32,
    stamp: u64,
    /// key → way position inside its set (the set itself is derived
    /// from the key). `None` for narrow sets, which scan instead.
    index: Option<HashMap<u32, u32, BuildKeyHasher>>,
}

#[derive(Clone, Debug)]
struct Entry<V> {
    key: u32,
    value: V,
    stamp: u64,
}

impl<V> AssocBuffer<V> {
    /// A buffer with `sets × ways` entries.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two, or either argument is 0.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "sets and ways must be positive");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        AssocBuffer {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            set_mask: (sets - 1) as u32,
            stamp: 0,
            index: (ways > INDEXED_WAYS_MIN)
                .then(|| HashMap::with_capacity_and_hasher(sets * ways, BuildKeyHasher)),
        }
    }

    /// A fully-associative buffer with `entries` entries.
    ///
    /// # Panics
    /// Panics if `entries` is 0.
    #[must_use]
    pub fn fully_associative(entries: usize) -> Self {
        Self::new(1, entries)
    }

    /// Total capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    fn set_index(&self, key: u32) -> usize {
        (key & self.set_mask) as usize
    }

    /// Way position of `key` inside its set, if resident.
    fn find_way(&self, set: usize, key: u32) -> Option<usize> {
        match &self.index {
            Some(idx) => idx.get(&key).map(|&w| w as usize),
            None => self.sets[set].iter().position(|e| e.key == key),
        }
    }

    /// Look up `key`, refreshing its LRU position on a hit.
    pub fn lookup(&mut self, key: u32) -> Option<&mut V> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_index(key);
        let way = self.find_way(set, key)?;
        let e = &mut self.sets[set][way];
        e.stamp = stamp;
        Some(&mut e.value)
    }

    /// Like [`Self::lookup`], but also returns the entry's way position
    /// so the caller can come back via [`Self::touch`] /
    /// [`Self::remove_at`] without paying a second search. The position
    /// stays valid until the next operation that moves entries
    /// (insert-with-eviction, remove, flush).
    pub fn lookup_pos(&mut self, key: u32) -> Option<(u32, &mut V)> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_index(key);
        let way = self.find_way(set, key)?;
        let e = &mut self.sets[set][way];
        e.stamp = stamp;
        Some((way as u32, &mut e.value))
    }

    /// Revisit the entry a prior [`Self::lookup_pos`] found, refreshing
    /// its LRU stamp exactly as `lookup` would — without searching.
    /// Returns `None` (and leaves LRU state untouched) if `way` no
    /// longer holds `key`.
    pub fn touch(&mut self, key: u32, way: u32) -> Option<&mut V> {
        let set = self.set_index(key);
        let e = self.sets[set].get_mut(way as usize)?;
        if e.key != key {
            return None;
        }
        self.stamp += 1;
        e.stamp = self.stamp;
        Some(&mut e.value)
    }

    /// Look up `key` without touching LRU state.
    #[must_use]
    pub fn peek(&self, key: u32) -> Option<&V> {
        let set = self.set_index(key);
        let way = self.find_way(set, key)?;
        Some(&self.sets[set][way].value)
    }

    /// Insert or overwrite `key`, evicting the least-recently-used entry
    /// of a full set. Returns the evicted `(key, value)`, if any.
    pub fn insert(&mut self, key: u32, value: V) -> Option<(u32, V)> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set_idx = self.set_index(key);
        if let Some(way) = self.find_way(set_idx, key) {
            let e = &mut self.sets[set_idx][way];
            e.value = value;
            e.stamp = stamp;
            return None;
        }
        let set = &mut self.sets[set_idx];
        if set.len() < self.ways {
            if let Some(idx) = &mut self.index {
                idx.insert(key, set.len() as u32);
            }
            set.push(Entry { key, value, stamp });
            return None;
        }
        // Capacity miss: the LRU scan is O(ways), but runs only on the
        // (rare) eviction path — hits and fills never reach it.
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(i, _)| i)
            .expect("full set is nonempty");
        let old = std::mem::replace(&mut set[victim], Entry { key, value, stamp });
        if let Some(idx) = &mut self.index {
            idx.remove(&old.key);
            idx.insert(key, victim as u32);
        }
        Some((old.key, old.value))
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&mut self, key: u32) -> Option<V> {
        let set_idx = self.set_index(key);
        let pos = self.find_way(set_idx, key)?;
        Some(self.remove_entry(set_idx, pos))
    }

    /// Remove the entry a prior [`Self::lookup_pos`] found, without
    /// searching. Returns `None` if `way` no longer holds `key`.
    pub fn remove_at(&mut self, key: u32, way: u32) -> Option<V> {
        let set_idx = self.set_index(key);
        let pos = way as usize;
        if self.sets[set_idx].get(pos)?.key != key {
            return None;
        }
        Some(self.remove_entry(set_idx, pos))
    }

    fn remove_entry(&mut self, set_idx: usize, pos: usize) -> V {
        let set = &mut self.sets[set_idx];
        let removed = set.swap_remove(pos);
        if let Some(idx) = &mut self.index {
            idx.remove(&removed.key);
            if let Some(moved) = set.get(pos) {
                idx.insert(moved.key, pos as u32);
            }
        }
        removed.value
    }

    /// Discard all entries (context switch).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        if let Some(idx) = &mut self.index {
            idx.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_lookup_hits() {
        let mut b = AssocBuffer::fully_associative(4);
        assert!(b.insert(10, "a").is_none());
        assert_eq!(b.lookup(10), Some(&mut "a"));
        assert_eq!(b.lookup(11), None);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut b = AssocBuffer::fully_associative(2);
        b.insert(1, 1);
        b.insert(2, 2);
        b.lookup(1); // 2 is now LRU
        let evicted = b.insert(3, 3);
        assert_eq!(evicted, Some((2, 2)));
        assert!(b.peek(1).is_some());
        assert!(b.peek(3).is_some());
        assert!(b.peek(2).is_none());
    }

    #[test]
    fn insert_existing_key_overwrites_without_eviction() {
        let mut b = AssocBuffer::fully_associative(2);
        b.insert(1, 1);
        b.insert(2, 2);
        assert!(b.insert(1, 100).is_none());
        assert_eq!(b.peek(1), Some(&100));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut b = AssocBuffer::fully_associative(8);
        for k in 0..100 {
            b.insert(k, k);
            assert!(b.len() <= 8);
        }
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn set_associative_maps_keys_to_sets() {
        // 4 sets × 1 way: keys 0 and 4 collide (same set), 0 and 1 don't.
        let mut b = AssocBuffer::new(4, 1);
        b.insert(0, "zero");
        b.insert(1, "one");
        assert_eq!(b.len(), 2);
        let evicted = b.insert(4, "four");
        assert_eq!(evicted, Some((0, "zero")));
        assert_eq!(b.peek(1), Some(&"one"));
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut b = AssocBuffer::fully_associative(2);
        b.insert(1, 1);
        b.insert(2, 2);
        let _ = b.peek(1); // does NOT protect 1
        let evicted = b.insert(3, 3);
        assert_eq!(evicted, Some((1, 1)));
    }

    #[test]
    fn remove_and_flush() {
        let mut b = AssocBuffer::fully_associative(4);
        b.insert(1, 1);
        b.insert(2, 2);
        assert_eq!(b.remove(1), Some(1));
        assert_eq!(b.remove(1), None);
        b.flush();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = AssocBuffer::<()>::new(3, 2);
    }

    #[test]
    fn lookup_pos_touch_and_remove_at_reuse_the_found_way() {
        let mut b = AssocBuffer::fully_associative(2);
        b.insert(1, 10);
        b.insert(2, 20);
        let (way, v) = b.lookup_pos(1).unwrap();
        assert_eq!(*v, 10);
        *b.touch(1, way).unwrap() = 11;
        assert_eq!(b.peek(1), Some(&11));
        // touch refreshed 1's stamp, so 2 is now the LRU victim.
        assert_eq!(b.insert(3, 30), Some((2, 20)));
        // Stale positions are rejected, not misattributed.
        assert_eq!(b.touch(2, way), None);
        let (way1, _) = b.lookup_pos(1).unwrap();
        assert_eq!(b.remove_at(1, way1), Some(11));
        assert_eq!(b.remove_at(1, way1), None);
        assert_eq!(b.peek(3), Some(&30));
    }

    // 16 ways crosses INDEXED_WAYS_MIN, so these exercise the hash-index
    // fast path; the LRU outcomes must match the scanned semantics above.

    #[test]
    fn indexed_wide_set_preserves_lru_order() {
        let mut b = AssocBuffer::fully_associative(16);
        for k in 0..16 {
            b.insert(k, k);
        }
        for k in 1..16 {
            b.lookup(k); // key 0 is now the unique LRU entry
        }
        assert_eq!(b.insert(100, 100), Some((0, 0)));
        assert_eq!(b.peek(100), Some(&100));
        assert_eq!(b.peek(0), None);
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn indexed_remove_keeps_index_consistent() {
        let mut b = AssocBuffer::fully_associative(16);
        for k in 0..10 {
            b.insert(k, k);
        }
        // Removing from the middle swap-moves the last entry into the
        // hole; the moved key must stay findable through the index.
        assert_eq!(b.remove(3), Some(3));
        assert_eq!(b.lookup(9), Some(&mut 9));
        assert_eq!(b.remove(9), Some(9));
        assert_eq!(b.remove(9), None);
        assert_eq!(b.len(), 8);
        b.flush();
        assert!(b.is_empty());
        assert!(b.insert(3, 3).is_none());
        assert_eq!(b.peek(3), Some(&3));
    }
}
