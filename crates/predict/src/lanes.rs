//! Bit-parallel struct-of-arrays sweep lanes: score up to
//! [`MAX_LANES`] related predictor configurations per branch event in
//! packed `u64` lanes.
//!
//! The sweep dimension is embarrassingly data-parallel *per event*: a
//! counter sweep over N thresholds walks the same residency state N
//! times and differs only in a few bits of per-entry counter state.
//! The engines here exploit that with the bit-parallel-DFA trick —
//! one `u64` word holds one *bit plane* of 32 configurations'
//! counters (bit `j` of plane `b` is bit `b` of lane `j`'s counter),
//! and saturating increment/decrement/threshold-compare become a
//! handful of shifts, masks, and carry ripples shared by every lane:
//!
//! * [`CbtbLanes`] — CBTB configurations sharing one buffer geometry
//!   `(entries, ways)`. Residency, LRU order, and remembered targets
//!   are provably independent of the counters (every branch is
//!   inserted on miss and touched on hit, regardless of what any
//!   counter predicts), so one [`AssocBuffer`] lookup per event
//!   serves all lanes; only the n-bit saturating counters are
//!   per-lane, stored as bit planes inside the shared entry.
//! * [`GshareLanes`] / [`LocalLanes`] — two-level configurations
//!   sharing the idealized target map and the history state (both
//!   evolve from branch *outcomes* only, identically for every
//!   geometry); each lane keeps its own compact pattern table.
//!
//! Per-lane hit/miss tallies accumulate into SoA [`PredStats`]:
//! lane-uniform counts (events, BTB lookups/misses) live in shared
//! scalars, and the per-lane correctness masks drip into bit-sliced
//! vertical counters that flush to per-lane totals every few thousand
//! events. [`LaneFamily::finish`] hands back one `PredStats` per lane,
//! bit-identical to scoring each configuration through its own
//! [`Evaluator`](crate::Evaluator) (enforced by the seeded randomized
//! equivalence tests below and the suite-wide fidelity tests in
//! `branchlab-experiments`).

use std::collections::HashMap;

use branchlab_ir::Addr;
use branchlab_trace::{BranchEvent, BranchKind};

use crate::assoc::{AssocBuffer, BuildKeyHasher};
use crate::cbtb::CbtbConfig;
use crate::predictor::PredStats;

/// Maximum configurations per lane family — one bit per lane in the
/// `u64` masks, capped at 32 so per-entry plane state stays compact.
pub const MAX_LANES: usize = 32;

/// Counter bit planes carried per CBTB lane entry. Configurations with
/// wider counters fall back to the scalar path.
const MAX_COUNTER_PLANES: usize = 4;

/// Branchless saturating counter step: increment toward `max` on a
/// taken outcome, decrement toward 0 otherwise, without branching on
/// the outcome. Shared by the scalar predictors
/// ([`Cbtb`](crate::Cbtb), the two-level pattern tables) and the
/// per-lane pattern tables here, so both paths saturate identically
/// by construction.
#[inline]
pub(crate) fn saturating_step(counter: u8, max: u8, taken: bool) -> u8 {
    let up = u8::from(taken) & u8::from(counter < max);
    let down = u8::from(!taken) & u8::from(counter > 0);
    counter + up - down
}

/// A predictor configuration's lane description, returned by
/// [`BranchPredictor::lane_spec`](crate::BranchPredictor::lane_spec)
/// when the predictor's current state is exactly the
/// freshly-constructed state the description implies.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LaneSpec {
    /// A counter-based BTB (see [`CbtbConfig`]).
    Cbtb(CbtbConfig),
    /// A gshare two-level predictor.
    Gshare {
        /// Pattern-table size in bits.
        table_bits: u32,
        /// Global-history bits folded into the index.
        history_bits: u32,
    },
    /// A local-history two-level predictor.
    Local {
        /// Pattern-table size in bits.
        table_bits: u32,
        /// Per-branch history bits folded into the index.
        history_bits: u32,
    },
}

/// The compatibility key lane planning groups by: sweep points with
/// equal keys can share one [`LaneFamily`] pass.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum LaneFamilyKey {
    /// CBTB lanes must share the buffer geometry (same residency and
    /// LRU evolution); counters and thresholds are free per lane.
    Cbtb {
        /// Total buffer entries.
        entries: usize,
        /// Ways per set.
        ways: usize,
    },
    /// All gshare lanes share the target map and the global history
    /// register; table geometry is free per lane.
    Gshare,
    /// All local-history lanes share the target map and the per-branch
    /// history map; table geometry is free per lane.
    Local,
}

impl LaneSpec {
    /// The family this spec can join, or `None` when it must stay on
    /// the scalar path (e.g. CBTB counters wider than the packed
    /// planes).
    #[must_use]
    pub fn family_key(&self) -> Option<LaneFamilyKey> {
        match *self {
            LaneSpec::Cbtb(c) if usize::from(c.counter_bits) <= MAX_COUNTER_PLANES => {
                Some(LaneFamilyKey::Cbtb {
                    entries: c.entries,
                    ways: c.ways,
                })
            }
            LaneSpec::Cbtb(_) => None,
            LaneSpec::Gshare { .. } => Some(LaneFamilyKey::Gshare),
            LaneSpec::Local { .. } => Some(LaneFamilyKey::Local),
        }
    }
}

/// Bit-sliced vertical counter: each `add` accumulates a 0/1-per-lane
/// mask, carried across `VC_BITS` planes. Draining every
/// `VC_CAPACITY` adds keeps the planes from overflowing.
const VC_BITS: usize = 16;
const VC_CAPACITY: u32 = (1 << VC_BITS) - 1;

#[derive(Clone, Debug)]
struct VerticalCounter {
    planes: [u64; VC_BITS],
    adds: u32,
}

impl VerticalCounter {
    fn new() -> Self {
        VerticalCounter {
            planes: [0; VC_BITS],
            adds: 0,
        }
    }

    /// Ripple-carry `mask` (one bit per lane) into the planes.
    #[inline]
    fn add(&mut self, mut mask: u64) {
        self.adds += 1;
        for p in &mut self.planes {
            let carry = *p & mask;
            *p ^= mask;
            mask = carry;
            if mask == 0 {
                break;
            }
        }
    }

    /// Flush each lane's accumulated count into `out` and reset.
    fn drain(&mut self, lanes: usize, out: &mut [u64]) {
        for (j, slot) in out.iter_mut().enumerate().take(lanes) {
            let mut v = 0u64;
            for (b, p) in self.planes.iter().enumerate() {
                v |= ((p >> j) & 1) << b;
            }
            *slot += v;
        }
        self.planes = [0; VC_BITS];
        self.adds = 0;
    }
}

/// `c ≥ K` per lane over bit-plane counters, by bit-sliced borrow
/// propagation of `c − K`: a lane's final borrow is set exactly when
/// its counter is below its effective threshold.
#[inline]
fn decide_mask(
    planes: &[u64; MAX_COUNTER_PLANES],
    k_planes: &[u64; MAX_COUNTER_PLANES + 1],
    used: usize,
    lane_mask: u64,
) -> u64 {
    let mut borrow = 0u64;
    for b in 0..used {
        let a = planes[b];
        let k = k_planes[b];
        borrow = (!a & k) | (!(a ^ k) & borrow);
    }
    // A threshold bit above every counter plane (K = 2^bits, i.e. a
    // strict compare against a saturated counter) can never be met.
    borrow |= k_planes[used];
    lane_mask & !borrow
}

/// Saturating `+1` on every lane of `planes` except those already at
/// their width's all-ones value. Lanes may have different widths: a
/// non-saturated lane has a zero bit inside its width, so the carry
/// ripple always dies before escaping into the next lane's planes.
#[inline]
fn inc_planes(
    planes: &mut [u64; MAX_COUNTER_PLANES],
    width_masks: &[u64; MAX_COUNTER_PLANES + 1],
    used: usize,
    lane_mask: u64,
) {
    let mut acc = lane_mask;
    let mut saturated = 0u64;
    for b in 0..used {
        acc &= planes[b];
        saturated |= acc & width_masks[b + 1];
    }
    let mut carry = lane_mask & !saturated;
    for p in planes.iter_mut().take(used) {
        if carry == 0 {
            break;
        }
        let t = *p & carry;
        *p ^= carry;
        carry = t;
    }
}

/// Saturating `−1` on every lane except those already at zero
/// (borrow ripple; the mirror of [`inc_planes`]).
#[inline]
fn dec_planes(
    planes: &mut [u64; MAX_COUNTER_PLANES],
    width_masks: &[u64; MAX_COUNTER_PLANES + 1],
    used: usize,
    lane_mask: u64,
) {
    let mut any = 0u64;
    let mut zero = 0u64;
    for b in 0..used {
        any |= planes[b];
        zero |= !any & width_masks[b + 1];
    }
    let mut borrow = lane_mask & !zero;
    for p in planes.iter_mut().take(used) {
        if borrow == 0 {
            break;
        }
        let t = !*p & borrow;
        *p ^= borrow;
        borrow = t;
    }
}

/// One shared buffer entry: the remembered target (identical across
/// lanes — it tracks the last taken outcome, not any counter) plus
/// the packed per-lane counter bit planes.
#[derive(Clone, Debug)]
struct LaneEntry {
    target: Addr,
    planes: [u64; MAX_COUNTER_PLANES],
}

/// Bit-parallel scoring for up to [`MAX_LANES`] CBTB configurations
/// sharing one `(entries, ways)` geometry.
#[derive(Clone, Debug)]
pub struct CbtbLanes {
    buf: AssocBuffer<LaneEntry>,
    lanes: usize,
    lane_mask: u64,
    planes_used: usize,
    /// `width_masks[w]`: lanes whose counters are exactly `w` bits.
    width_masks: [u64; MAX_COUNTER_PLANES + 1],
    /// Bit planes of each lane's effective threshold `K = T + strict`
    /// (predict taken ⇔ counter ≥ K; `C > T` is `C ≥ T + 1`).
    k_planes: [u64; MAX_COUNTER_PLANES + 1],
    init_taken: [u64; MAX_COUNTER_PLANES],
    init_not_taken: [u64; MAX_COUNTER_PLANES],
    events: u64,
    cond_events: u64,
    lookups: u64,
    misses: u64,
    /// Correct-prediction increments that are lane-uniform (the miss
    /// path: every lane predicts not-taken on a buffer miss).
    shared_correct: u64,
    shared_cond_correct: u64,
    vc_correct: VerticalCounter,
    vc_cond_correct: VerticalCounter,
    correct: Vec<u64>,
    cond_correct: Vec<u64>,
}

impl CbtbLanes {
    /// Pack `configs` into one lane family.
    ///
    /// # Panics
    /// Panics if `configs` is empty or longer than [`MAX_LANES`], if
    /// geometries differ, or on any configuration [`crate::Cbtb::new`]
    /// would reject (plus counters wider than the packed planes).
    #[must_use]
    pub fn new(configs: &[CbtbConfig]) -> Self {
        assert!(
            !configs.is_empty() && configs.len() <= MAX_LANES,
            "lane family must hold 1..={MAX_LANES} configs"
        );
        let geom = (configs[0].entries, configs[0].ways);
        let mut width_masks = [0u64; MAX_COUNTER_PLANES + 1];
        let mut k_planes = [0u64; MAX_COUNTER_PLANES + 1];
        let mut init_taken = [0u64; MAX_COUNTER_PLANES];
        let mut init_not_taken = [0u64; MAX_COUNTER_PLANES];
        let mut planes_used = 0usize;
        for (j, c) in configs.iter().enumerate() {
            assert_eq!((c.entries, c.ways), geom, "lanes must share geometry");
            assert!(
                c.ways > 0 && c.entries.is_multiple_of(c.ways),
                "entries must be a multiple of ways"
            );
            let bits = usize::from(c.counter_bits);
            assert!(
                (1..=MAX_COUNTER_PLANES).contains(&bits),
                "lane counter bits must be in 1..={MAX_COUNTER_PLANES}"
            );
            let max = (1u16 << bits) - 1;
            assert!(
                c.threshold >= 1 && u16::from(c.threshold) <= max,
                "threshold must be in 1..=counter max"
            );
            planes_used = planes_used.max(bits);
            let bit = 1u64 << j;
            width_masks[bits] |= bit;
            let k = u16::from(c.threshold) + u16::from(c.strict_greater);
            for (b, plane) in k_planes.iter_mut().enumerate() {
                *plane |= u64::from((k >> b) & 1) * bit;
            }
            for (b, plane) in init_taken.iter_mut().enumerate() {
                *plane |= u64::from((c.threshold >> b) & 1) * bit;
            }
            for (b, plane) in init_not_taken.iter_mut().enumerate() {
                *plane |= u64::from(((c.threshold - 1) >> b) & 1) * bit;
            }
        }
        let lanes = configs.len();
        CbtbLanes {
            buf: AssocBuffer::new(geom.0 / geom.1, geom.1),
            lanes,
            lane_mask: lane_mask(lanes),
            planes_used,
            width_masks,
            k_planes,
            init_taken,
            init_not_taken,
            events: 0,
            cond_events: 0,
            lookups: 0,
            misses: 0,
            shared_correct: 0,
            shared_cond_correct: 0,
            vc_correct: VerticalCounter::new(),
            vc_cond_correct: VerticalCounter::new(),
            correct: vec![0; lanes],
            cond_correct: vec![0; lanes],
        }
    }

    #[inline]
    fn tally(&mut self, correct_mask: u64, cond: bool) {
        self.vc_correct.add(correct_mask);
        if self.vc_correct.adds == VC_CAPACITY {
            self.vc_correct.drain(self.lanes, &mut self.correct);
        }
        if cond {
            self.vc_cond_correct.add(correct_mask);
            if self.vc_cond_correct.adds == VC_CAPACITY {
                self.vc_cond_correct
                    .drain(self.lanes, &mut self.cond_correct);
            }
        }
    }

    /// Score one event for every lane: the exact predict → tally →
    /// update sequence of the scalar [`Evaluator`](crate::Evaluator),
    /// with one buffer search amortized over all lanes.
    #[inline]
    fn step(&mut self, ev: &BranchEvent) {
        self.events += 1;
        let cond = ev.kind == BranchKind::Cond;
        self.cond_events += u64::from(cond);
        self.lookups += 1;
        let lane_mask = self.lane_mask;
        let used = self.planes_used;
        let k_planes = self.k_planes;
        let width_masks = self.width_masks;
        let hit = match self.buf.lookup_pos(ev.pc.0) {
            Some((_, entry)) => {
                let decide = decide_mask(&entry.planes, &k_planes, used, lane_mask);
                let correct_mask = if ev.taken {
                    if entry.target == ev.target {
                        decide
                    } else {
                        0
                    }
                } else {
                    lane_mask & !decide
                };
                if ev.taken {
                    inc_planes(&mut entry.planes, &width_masks, used, lane_mask);
                    entry.target = ev.target;
                } else {
                    dec_planes(&mut entry.planes, &width_masks, used, lane_mask);
                }
                Some(correct_mask)
            }
            None => None,
        };
        match hit {
            Some(correct_mask) => self.tally(correct_mask, cond),
            None => {
                self.misses += 1;
                let c = u64::from(!ev.taken);
                self.shared_correct += c;
                self.shared_cond_correct += c & u64::from(cond);
                let planes = if ev.taken {
                    self.init_taken
                } else {
                    self.init_not_taken
                };
                self.buf.insert(
                    ev.pc.0,
                    LaneEntry {
                        target: ev.target,
                        planes,
                    },
                );
            }
        }
    }

    fn finish(mut self) -> Vec<PredStats> {
        self.vc_correct.drain(self.lanes, &mut self.correct);
        self.vc_cond_correct
            .drain(self.lanes, &mut self.cond_correct);
        (0..self.lanes)
            .map(|j| PredStats {
                events: self.events,
                correct: self.shared_correct + self.correct[j],
                cond_events: self.cond_events,
                cond_correct: self.shared_cond_correct + self.cond_correct[j],
                btb_lookups: self.lookups,
                btb_misses: self.misses,
            })
            .collect()
    }
}

fn lane_mask(lanes: usize) -> u64 {
    if lanes == 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// One lane's pattern table for the two-level families.
#[derive(Clone, Debug)]
struct PatternLane {
    counters: Vec<u8>,
    index_mask: u32,
    history_mask: u32,
    history_bits: u32,
    cond_correct: u64,
}

fn pattern_lane(table_bits: u32, history_bits: u32) -> PatternLane {
    assert!(
        (1..=24).contains(&table_bits),
        "table bits must be in 1..=24"
    );
    assert!(history_bits <= table_bits, "history wider than the table");
    PatternLane {
        counters: vec![1; 1 << table_bits], // weakly not-taken
        index_mask: (1u32 << table_bits) - 1,
        history_mask: ((1u64 << history_bits) - 1) as u32,
        history_bits,
        cond_correct: 0,
    }
}

/// Shared per-event scoring for the two-level families, once the
/// caller has computed each lane's table index. Returns nothing; the
/// lane's `cond_correct` and counters are updated in place.
#[inline]
fn score_pattern_lane(lane: &mut PatternLane, idx: u32, scored: Option<(u64, u64)>, taken: bool) {
    let slot = &mut lane.counters[(idx & lane.index_mask) as usize];
    if let Some((taken_correct, not_taken_correct)) = scored {
        let dir = *slot >= 2;
        lane.cond_correct += if dir {
            taken_correct
        } else {
            not_taken_correct
        };
    }
    *slot = saturating_step(*slot, 3, taken);
}

/// SoA scoring for up to [`MAX_LANES`] gshare geometries sharing the
/// target map and the global history register (both evolve from
/// branch outcomes only, so they are lane-uniform by construction).
#[derive(Clone, Debug)]
pub struct GshareLanes {
    lanes: Vec<PatternLane>,
    targets: HashMap<u32, Addr, BuildKeyHasher>,
    history: u32,
    events: u64,
    cond_events: u64,
    shared_correct: u64,
    shared_cond_correct: u64,
}

impl GshareLanes {
    /// Pack `(table_bits, history_bits)` geometries into one family.
    ///
    /// # Panics
    /// Panics if `geometries` is empty or longer than [`MAX_LANES`],
    /// or on any geometry [`crate::Gshare::new`] would reject.
    #[must_use]
    pub fn new(geometries: &[(u32, u32)]) -> Self {
        assert!(
            !geometries.is_empty() && geometries.len() <= MAX_LANES,
            "lane family must hold 1..={MAX_LANES} configs"
        );
        GshareLanes {
            lanes: geometries
                .iter()
                .map(|&(t, h)| pattern_lane(t, h))
                .collect(),
            targets: HashMap::default(),
            history: 0,
            events: 0,
            cond_events: 0,
            shared_correct: 0,
            shared_cond_correct: 0,
        }
    }

    #[inline]
    fn step(&mut self, ev: &BranchEvent) {
        self.events += 1;
        let target = self.targets.get(&ev.pc.0).copied();
        if ev.kind == BranchKind::Cond {
            self.cond_events += 1;
            let scored = match target {
                // No remembered target: every lane degrades its taken
                // prediction to not-taken, lane-uniformly.
                None => {
                    let c = u64::from(!ev.taken);
                    self.shared_correct += c;
                    self.shared_cond_correct += c;
                    None
                }
                Some(t) => Some((u64::from(ev.taken && t == ev.target), u64::from(!ev.taken))),
            };
            for lane in &mut self.lanes {
                let idx = ev.pc.0 ^ (self.history & lane.history_mask);
                score_pattern_lane(lane, idx, scored, ev.taken);
            }
            self.history = (self.history << 1) | u32::from(ev.taken);
        } else {
            self.shared_correct += match target {
                Some(t) => u64::from(ev.taken && t == ev.target),
                None => u64::from(!ev.taken),
            };
        }
        if ev.taken {
            self.targets.insert(ev.pc.0, ev.target);
        }
    }

    fn finish(self) -> Vec<PredStats> {
        two_level_stats(
            &self.lanes,
            self.events,
            self.cond_events,
            self.shared_correct,
            self.shared_cond_correct,
        )
    }
}

/// SoA scoring for up to [`MAX_LANES`] local-history geometries
/// sharing the target map and the per-branch history map.
#[derive(Clone, Debug)]
pub struct LocalLanes {
    lanes: Vec<PatternLane>,
    targets: HashMap<u32, Addr, BuildKeyHasher>,
    /// Raw (unmasked) per-branch outcome history — identical for
    /// every lane; each lane masks its own window at indexing time.
    histories: HashMap<u32, u32, BuildKeyHasher>,
    events: u64,
    cond_events: u64,
    shared_correct: u64,
    shared_cond_correct: u64,
}

impl LocalLanes {
    /// Pack `(table_bits, history_bits)` geometries into one family.
    ///
    /// # Panics
    /// Panics if `geometries` is empty or longer than [`MAX_LANES`],
    /// or on any geometry [`crate::LocalHistory::new`] would reject.
    #[must_use]
    pub fn new(geometries: &[(u32, u32)]) -> Self {
        assert!(
            !geometries.is_empty() && geometries.len() <= MAX_LANES,
            "lane family must hold 1..={MAX_LANES} configs"
        );
        LocalLanes {
            lanes: geometries
                .iter()
                .map(|&(t, h)| pattern_lane(t, h))
                .collect(),
            targets: HashMap::default(),
            histories: HashMap::default(),
            events: 0,
            cond_events: 0,
            shared_correct: 0,
            shared_cond_correct: 0,
        }
    }

    #[inline]
    fn step(&mut self, ev: &BranchEvent) {
        self.events += 1;
        let target = self.targets.get(&ev.pc.0).copied();
        if ev.kind == BranchKind::Cond {
            self.cond_events += 1;
            let scored = match target {
                None => {
                    let c = u64::from(!ev.taken);
                    self.shared_correct += c;
                    self.shared_cond_correct += c;
                    None
                }
                Some(t) => Some((u64::from(ev.taken && t == ev.target), u64::from(!ev.taken))),
            };
            let h = self.histories.get(&ev.pc.0).copied().unwrap_or(0);
            for lane in &mut self.lanes {
                let idx = (ev.pc.0 << lane.history_bits) ^ (h & lane.history_mask);
                score_pattern_lane(lane, idx, scored, ev.taken);
            }
            let slot = self.histories.entry(ev.pc.0).or_insert(0);
            *slot = (*slot << 1) | u32::from(ev.taken);
        } else {
            self.shared_correct += match target {
                Some(t) => u64::from(ev.taken && t == ev.target),
                None => u64::from(!ev.taken),
            };
        }
        if ev.taken {
            self.targets.insert(ev.pc.0, ev.target);
        }
    }

    fn finish(self) -> Vec<PredStats> {
        two_level_stats(
            &self.lanes,
            self.events,
            self.cond_events,
            self.shared_correct,
            self.shared_cond_correct,
        )
    }
}

fn two_level_stats(
    lanes: &[PatternLane],
    events: u64,
    cond_events: u64,
    shared_correct: u64,
    shared_cond_correct: u64,
) -> Vec<PredStats> {
    lanes
        .iter()
        .map(|l| PredStats {
            events,
            correct: shared_correct + l.cond_correct,
            cond_events,
            cond_correct: shared_cond_correct + l.cond_correct,
            btb_lookups: 0,
            btb_misses: 0,
        })
        .collect()
}

/// One packed family of compatible sweep lanes, ready to consume a
/// branch-event stream block-wise (the lane-path counterpart of a
/// chunk of scalar [`Evaluator`](crate::Evaluator)s).
#[derive(Clone, Debug)]
pub enum LaneFamily {
    /// CBTB configurations sharing one buffer geometry (boxed: the
    /// packed buffer planes dwarf the other variants).
    Cbtb(Box<CbtbLanes>),
    /// Gshare geometries sharing history + targets.
    Gshare(GshareLanes),
    /// Local-history geometries sharing histories + targets.
    Local(LocalLanes),
}

impl LaneFamily {
    /// Build the family for `specs`, which must all share one
    /// [`LaneFamilyKey`].
    ///
    /// # Panics
    /// Panics if `specs` is empty, longer than [`MAX_LANES`], mixes
    /// family keys, or contains a spec with no key.
    #[must_use]
    pub fn new(specs: &[LaneSpec]) -> Self {
        let key = specs
            .first()
            .and_then(LaneSpec::family_key)
            .expect("lane family needs at least one packable spec");
        assert!(
            specs.iter().all(|s| s.family_key() == Some(key)),
            "lane family mixes incompatible specs"
        );
        match key {
            LaneFamilyKey::Cbtb { .. } => {
                let configs: Vec<CbtbConfig> = specs
                    .iter()
                    .map(|s| match s {
                        LaneSpec::Cbtb(c) => *c,
                        _ => unreachable!("key matched Cbtb"),
                    })
                    .collect();
                LaneFamily::Cbtb(Box::new(CbtbLanes::new(&configs)))
            }
            LaneFamilyKey::Gshare => LaneFamily::Gshare(GshareLanes::new(&two_level_geoms(specs))),
            LaneFamilyKey::Local => LaneFamily::Local(LocalLanes::new(&two_level_geoms(specs))),
        }
    }

    /// Number of packed lanes (sweep points) in this family.
    #[must_use]
    pub fn lanes(&self) -> usize {
        match self {
            LaneFamily::Cbtb(f) => f.lanes,
            LaneFamily::Gshare(f) => f.lanes.len(),
            LaneFamily::Local(f) => f.lanes.len(),
        }
    }

    /// Branch events scored so far (every lane sees every event).
    #[must_use]
    pub fn events_scored(&self) -> u64 {
        match self {
            LaneFamily::Cbtb(f) => f.events,
            LaneFamily::Gshare(f) => f.events,
            LaneFamily::Local(f) => f.events,
        }
    }

    /// Score a block of events into every lane, in stream order.
    pub fn eval_block(&mut self, events: &[BranchEvent]) {
        match self {
            LaneFamily::Cbtb(f) => {
                for ev in events {
                    f.step(ev);
                }
            }
            LaneFamily::Gshare(f) => {
                for ev in events {
                    f.step(ev);
                }
            }
            LaneFamily::Local(f) => {
                for ev in events {
                    f.step(ev);
                }
            }
        }
    }

    /// Extract one [`PredStats`] per lane, in spec order —
    /// bit-identical to having scored each configuration through its
    /// own scalar evaluator.
    #[must_use]
    pub fn finish(self) -> Vec<PredStats> {
        match self {
            LaneFamily::Cbtb(f) => f.finish(),
            LaneFamily::Gshare(f) => f.finish(),
            LaneFamily::Local(f) => f.finish(),
        }
    }
}

fn two_level_geoms(specs: &[LaneSpec]) -> Vec<(u32, u32)> {
    specs
        .iter()
        .map(|s| match *s {
            LaneSpec::Gshare {
                table_bits,
                history_bits,
            }
            | LaneSpec::Local {
                table_bits,
                history_bits,
            } => (table_bits, history_bits),
            LaneSpec::Cbtb(_) => unreachable!("key matched a two-level family"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_util::{cond_to, indirect, jmp};
    use crate::predictor::BranchPredictor;
    use crate::{Cbtb, Gshare, LocalHistory};
    use branchlab_telemetry::Rng;

    #[test]
    fn saturating_step_matches_branchy_reference() {
        for max in [1u8, 3, 7, 15] {
            for counter in 0..=max {
                for taken in [false, true] {
                    let reference = if taken {
                        (counter + 1).min(max)
                    } else {
                        counter.saturating_sub(1)
                    };
                    assert_eq!(
                        saturating_step(counter, max, taken),
                        reference,
                        "counter={counter} max={max} taken={taken}"
                    );
                }
            }
        }
    }

    #[test]
    fn family_keys_gate_compatibility() {
        let paper = LaneSpec::Cbtb(CbtbConfig::paper());
        let other_geom = LaneSpec::Cbtb(CbtbConfig {
            entries: 64,
            ways: 4,
            ..CbtbConfig::paper()
        });
        assert_ne!(paper.family_key(), other_geom.family_key());
        let wide = LaneSpec::Cbtb(CbtbConfig {
            counter_bits: 5,
            threshold: 16,
            ..CbtbConfig::paper()
        });
        assert_eq!(wide.family_key(), None, "wide counters stay scalar");
        assert_eq!(
            LaneSpec::Gshare {
                table_bits: 12,
                history_bits: 8
            }
            .family_key(),
            Some(LaneFamilyKey::Gshare)
        );
        assert_ne!(
            LaneSpec::Gshare {
                table_bits: 12,
                history_bits: 8
            }
            .family_key(),
            LaneSpec::Local {
                table_bits: 12,
                history_bits: 8
            }
            .family_key()
        );
    }

    /// Every (counter_bits, threshold) point at one geometry — the
    /// shape of the paper's counter ablation, 26 lanes.
    fn counter_sweep(entries: usize, ways: usize, strict: bool) -> Vec<CbtbConfig> {
        let mut v = Vec::new();
        for bits in 1..=4u8 {
            let max = ((1u16 << bits) - 1) as u8;
            for threshold in 1..=max {
                v.push(CbtbConfig {
                    entries,
                    ways,
                    counter_bits: bits,
                    threshold,
                    strict_greater: strict,
                });
            }
        }
        v
    }

    /// A seeded event stream with aliasing-heavy PCs (small pools that
    /// collide in sets), mixed branch kinds, and shifting targets.
    fn random_events(seed: u64, n: usize, pc_pool: &[u32]) -> Vec<BranchEvent> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut pick = |m: u64| -> u64 { rng.next_u64() % m };
        (0..n)
            .map(|_| {
                let pc = pc_pool[pick(pc_pool.len() as u64) as usize];
                let target = 1000 + (pick(3) as u32) * 64;
                match pick(10) {
                    0 => jmp(pc, target),
                    1 => indirect(pc, target),
                    _ => cond_to(pc, pick(100) < 60, target),
                }
            })
            .collect()
    }

    fn scalar_stats(
        mut preds: Vec<Box<dyn BranchPredictor>>,
        events: &[BranchEvent],
    ) -> Vec<PredStats> {
        preds
            .iter_mut()
            .map(|p| {
                let mut stats = PredStats::default();
                p.eval_block(events, &mut stats);
                stats
            })
            .collect()
    }

    #[test]
    fn cbtb_lanes_match_scalar_on_random_streams() {
        // Fully-associative paper geometry; 26 mixed-width lanes.
        let configs = counter_sweep(256, 256, false);
        let pool: Vec<u32> = (0..60).map(|i| i * 7 + 3).collect();
        for seed in [1, 2, 1989] {
            let events = random_events(seed, 6000, &pool);
            let scalar = scalar_stats(
                configs
                    .iter()
                    .map(|c| Box::new(Cbtb::new(*c)) as Box<dyn BranchPredictor>)
                    .collect(),
                &events,
            );
            let mut family = CbtbLanes::new(&configs);
            for ev in &events {
                family.step(ev);
            }
            assert_eq!(family.finish(), scalar, "seed={seed}");
        }
    }

    #[test]
    fn cbtb_lanes_match_scalar_under_set_aliasing_and_eviction() {
        // 16 sets × 4 ways with a PC pool far larger than the buffer:
        // constant conflict misses, evictions, and re-fills.
        let mut configs = counter_sweep(64, 4, false);
        configs.extend(counter_sweep(64, 4, true).into_iter().take(6));
        let pool: Vec<u32> = (0..300).map(|i| i * 16 + 1).collect(); // heavy set aliasing
        let events = random_events(7, 8000, &pool);
        let scalar = scalar_stats(
            configs
                .iter()
                .map(|c| Box::new(Cbtb::new(*c)) as Box<dyn BranchPredictor>)
                .collect(),
            &events,
        );
        let mut family = CbtbLanes::new(&configs);
        for ev in &events {
            family.step(ev);
        }
        assert_eq!(family.finish(), scalar);
    }

    #[test]
    fn strict_lane_at_counter_max_never_predicts_taken() {
        // strict_greater with T = counter max means C > T is
        // unsatisfiable — the threshold bit lands above the counter
        // planes and must force a permanent not-taken decision.
        let configs = [
            CbtbConfig {
                counter_bits: 2,
                threshold: 3,
                strict_greater: true,
                ..CbtbConfig::paper()
            },
            CbtbConfig::paper(),
        ];
        let events: Vec<BranchEvent> = (0..50).map(|_| cond_to(8, true, 100)).collect();
        let scalar = scalar_stats(
            configs
                .iter()
                .map(|c| Box::new(Cbtb::new(*c)) as Box<dyn BranchPredictor>)
                .collect(),
            &events,
        );
        let mut family = CbtbLanes::new(&configs);
        for ev in &events {
            family.step(ev);
        }
        let lanes = family.finish();
        assert_eq!(lanes, scalar);
        // The strict lane mispredicts every hit; the paper lane
        // settles into correct taken predictions.
        assert!(lanes[0].correct < lanes[1].correct);
    }

    #[test]
    fn duplicate_lanes_agree_exactly() {
        let configs = [CbtbConfig::paper(), CbtbConfig::paper()];
        let events = random_events(11, 3000, &[1, 2, 3, 4, 5]);
        let mut family = CbtbLanes::new(&configs);
        for ev in &events {
            family.step(ev);
        }
        let stats = family.finish();
        assert_eq!(stats[0], stats[1]);
    }

    #[test]
    fn gshare_lanes_match_scalar_on_random_streams() {
        let geoms = [(12u32, 8u32), (12, 4), (10, 6), (8, 0), (14, 10)];
        let pool: Vec<u32> = (0..40).map(|i| i * 3 + 1).collect();
        for seed in [3, 1989] {
            let events = random_events(seed, 6000, &pool);
            let scalar = scalar_stats(
                geoms
                    .iter()
                    .map(|&(t, h)| Box::new(Gshare::new(t, h)) as Box<dyn BranchPredictor>)
                    .collect(),
                &events,
            );
            let mut family = GshareLanes::new(&geoms);
            for ev in &events {
                family.step(ev);
            }
            assert_eq!(family.finish(), scalar, "seed={seed}");
        }
    }

    #[test]
    fn local_lanes_match_scalar_on_random_streams() {
        let geoms = [(12u32, 6u32), (12, 2), (14, 8), (10, 0)];
        let pool: Vec<u32> = (0..40).map(|i| i * 5 + 2).collect();
        for seed in [5, 1989] {
            let events = random_events(seed, 6000, &pool);
            let scalar = scalar_stats(
                geoms
                    .iter()
                    .map(|&(t, h)| Box::new(LocalHistory::new(t, h)) as Box<dyn BranchPredictor>)
                    .collect(),
                &events,
            );
            let mut family = LocalLanes::new(&geoms);
            for ev in &events {
                family.step(ev);
            }
            assert_eq!(family.finish(), scalar, "seed={seed}");
        }
    }

    #[test]
    fn lane_family_builds_from_specs_and_scores_blocks() {
        let specs: Vec<LaneSpec> = counter_sweep(256, 256, false)
            .into_iter()
            .map(LaneSpec::Cbtb)
            .collect();
        let mut family = LaneFamily::new(&specs);
        assert_eq!(family.lanes(), specs.len());
        let events = random_events(13, 2000, &[10, 20, 30]);
        family.eval_block(&events[..1000]);
        family.eval_block(&events[1000..]);
        assert_eq!(family.events_scored(), 2000);
        let stats = family.finish();
        assert_eq!(stats.len(), specs.len());
        assert!(stats.iter().all(|s| s.events == 2000));
    }

    #[test]
    fn vertical_counter_drains_at_capacity_without_loss() {
        // Cross the VC_CAPACITY flush boundary: a long single-branch
        // stream keeps every hit on the vertical-counter path.
        let configs = [CbtbConfig::paper()];
        let n = VC_CAPACITY as usize + 500;
        let events: Vec<BranchEvent> = (0..n).map(|i| cond_to(4, i % 3 != 0, 100)).collect();
        let scalar = scalar_stats(vec![Box::new(Cbtb::paper())], &events);
        let mut family = CbtbLanes::new(&configs);
        for ev in &events {
            family.step(ev);
        }
        assert_eq!(family.finish(), scalar);
    }

    #[test]
    #[should_panic(expected = "share geometry")]
    fn mixed_geometry_family_rejected() {
        let _ = CbtbLanes::new(&[
            CbtbConfig::paper(),
            CbtbConfig {
                entries: 64,
                ways: 64,
                ..CbtbConfig::paper()
            },
        ]);
    }
}
