//! Two-level adaptive predictors — the *future work* the paper called
//! for ("new solutions to the branch problem that match or exceed the
//! performance of traditional approaches must be developed", §1) and
//! that Yeh & Patt published two years later. Included so the ablation
//! benches can quantify how much headroom the 1989 schemes left on the
//! table.
//!
//! Both predictors keep the BTB's target-remembering role (a full
//! target map — an idealization, since headroom is the question) and
//! replace the per-entry 2-bit counter with pattern-history indexing:
//!
//! * [`Gshare`]: a global branch-history register XOR-folded with the
//!   PC indexes one shared table of 2-bit counters.
//! * [`LocalHistory`]: each branch's own recent outcomes index the
//!   counter table (Yeh–Patt PAg-style, with hashed per-branch history).

use std::collections::HashMap;

use branchlab_ir::Addr;
use branchlab_telemetry::{NoopSink, ProbeEvent, ProbeKind, TelemetrySink};
use branchlab_trace::{BranchEvent, BranchKind};

use crate::assoc::BuildKeyHasher;
use crate::lanes::{saturating_step, LaneSpec};
use crate::predictor::{BranchPredictor, Prediction, TargetInfo};

/// Shared 2-bit-counter pattern table.
#[derive(Clone, Debug)]
struct PatternTable {
    counters: Vec<u8>,
    mask: u32,
}

impl PatternTable {
    fn new(bits: u32) -> Self {
        assert!((1..=24).contains(&bits), "table bits must be in 1..=24");
        PatternTable {
            counters: vec![1; 1 << bits], // weakly not-taken
            mask: (1u32 << bits) - 1,
        }
    }

    fn predict(&self, index: u32) -> bool {
        self.counters[(index & self.mask) as usize] >= 2
    }

    fn update(&mut self, index: u32, taken: bool) {
        let c = &mut self.counters[(index & self.mask) as usize];
        *c = saturating_step(*c, 3, taken);
    }
}

/// Remembered branch targets (idealized, unbounded — isolates the
/// *direction* prediction improvement).
#[derive(Clone, Debug, Default)]
struct TargetMap {
    targets: HashMap<u32, Addr, BuildKeyHasher>,
}

impl TargetMap {
    fn predict(&self, pc: Addr) -> Option<Addr> {
        self.targets.get(&pc.0).copied()
    }

    fn update(&mut self, ev: &BranchEvent) {
        if ev.taken {
            self.targets.insert(ev.pc.0, ev.target);
        }
    }
}

/// GShare: global history XOR PC indexes a shared 2-bit counter table.
///
/// Generic over a [`TelemetrySink`] like the BTBs; the default
/// [`NoopSink`] compiles the probes away.
#[derive(Clone, Debug)]
pub struct Gshare<S: TelemetrySink = NoopSink> {
    table: PatternTable,
    targets: TargetMap,
    history: u32,
    history_bits: u32,
    /// Whether any update has landed since construction/flush — an
    /// untouched predictor is exactly its [`LaneSpec`] and may be
    /// packed into a lane family.
    dirty: bool,
    sink: S,
}

impl Gshare {
    /// A gshare predictor with `table_bits` counters and
    /// `history_bits` of global history.
    ///
    /// # Panics
    /// Panics if `table_bits` ∉ 1..=24 or `history_bits` > `table_bits`.
    #[must_use]
    pub fn new(table_bits: u32, history_bits: u32) -> Self {
        Self::with_sink(table_bits, history_bits, NoopSink)
    }
}

impl<S: TelemetrySink> Gshare<S> {
    /// A gshare predictor that publishes probe events to `sink`.
    ///
    /// # Panics
    /// Panics if `table_bits` ∉ 1..=24 or `history_bits` > `table_bits`.
    #[must_use]
    pub fn with_sink(table_bits: u32, history_bits: u32, sink: S) -> Self {
        assert!(history_bits <= table_bits, "history wider than the table");
        Gshare {
            table: PatternTable::new(table_bits),
            targets: TargetMap::default(),
            history: 0,
            history_bits,
            dirty: false,
            sink,
        }
    }

    /// The telemetry sink.
    #[must_use]
    pub fn sink(&self) -> &S {
        &self.sink
    }

    fn index(&self, pc: Addr) -> u32 {
        pc.0 ^ (self.history & ((1u32 << self.history_bits) - 1))
    }
}

impl Default for Gshare {
    /// 12-bit table, 8 bits of history.
    fn default() -> Self {
        Self::new(12, 8)
    }
}

impl<S: TelemetrySink> BranchPredictor for Gshare<S> {
    fn name(&self) -> &'static str {
        "gshare"
    }

    fn predict(&mut self, ev: &BranchEvent) -> Prediction {
        match ev.kind {
            BranchKind::Cond => {
                if self.table.predict(self.index(ev.pc)) {
                    match self.targets.predict(ev.pc) {
                        Some(t) => Prediction {
                            taken: true,
                            target: TargetInfo::Addr(t),
                            hit: None,
                        },
                        None => Prediction::not_taken(),
                    }
                } else {
                    Prediction::not_taken()
                }
            }
            _ => match self.targets.predict(ev.pc) {
                Some(t) => Prediction {
                    taken: true,
                    target: TargetInfo::Addr(t),
                    hit: None,
                },
                None => Prediction::not_taken(),
            },
        }
    }

    fn update(&mut self, ev: &BranchEvent, pred: &Prediction) {
        self.dirty = true;
        if self.sink.enabled() {
            emit_direction_probes(&mut self.sink, &self.targets, ev, pred);
        }
        self.targets.update(ev);
        if ev.kind == BranchKind::Cond {
            self.table.update(self.index(ev.pc), ev.taken);
            self.history = (self.history << 1) | u32::from(ev.taken);
        }
    }

    fn flush(&mut self) {
        self.table = PatternTable::new((self.table.mask + 1).trailing_zeros());
        self.targets = TargetMap::default();
        self.history = 0;
        self.dirty = false;
    }

    fn lane_spec(&self) -> Option<LaneSpec> {
        (!self.sink.enabled() && !self.dirty).then(|| LaneSpec::Gshare {
            table_bits: (self.table.mask + 1).trailing_zeros(),
            history_bits: self.history_bits,
        })
    }
}

/// Shared probe emission for the two-level predictors: direction
/// tallies, mispredicts, target-map residence (hit/miss), and stale
/// targets (alias).
fn emit_direction_probes<S: TelemetrySink>(
    sink: &mut S,
    targets: &TargetMap,
    ev: &BranchEvent,
    pred: &Prediction,
) {
    let site = ev.pc.0;
    let kind = if ev.taken {
        ProbeKind::Taken
    } else {
        ProbeKind::NotTaken
    };
    sink.emit(ProbeEvent { site, kind });
    if !pred.is_correct(ev) {
        sink.emit(ProbeEvent {
            site,
            kind: ProbeKind::Mispredict,
        });
    }
    match targets.predict(ev.pc) {
        Some(old) => {
            sink.emit(ProbeEvent {
                site,
                kind: ProbeKind::Hit,
            });
            if ev.taken && old != ev.target {
                sink.emit(ProbeEvent {
                    site,
                    kind: ProbeKind::Alias,
                });
            }
        }
        None => sink.emit(ProbeEvent {
            site,
            kind: ProbeKind::Miss,
        }),
    }
}

/// Per-branch local-history predictor (PAg-style): each branch's own
/// outcome history, concatenated with low PC bits, indexes the shared
/// counter table.
///
/// Generic over a [`TelemetrySink`] like the BTBs; the default
/// [`NoopSink`] compiles the probes away.
#[derive(Clone, Debug)]
pub struct LocalHistory<S: TelemetrySink = NoopSink> {
    table: PatternTable,
    targets: TargetMap,
    histories: HashMap<u32, u32>,
    history_bits: u32,
    /// See [`Gshare`]: tracks divergence from the fresh [`LaneSpec`].
    dirty: bool,
    sink: S,
}

impl LocalHistory {
    /// A local-history predictor with `table_bits` counters and
    /// `history_bits` of per-branch history.
    ///
    /// # Panics
    /// Panics if `table_bits` ∉ 1..=24 or `history_bits` > `table_bits`.
    #[must_use]
    pub fn new(table_bits: u32, history_bits: u32) -> Self {
        Self::with_sink(table_bits, history_bits, NoopSink)
    }
}

impl<S: TelemetrySink> LocalHistory<S> {
    /// A local-history predictor that publishes probe events to `sink`.
    ///
    /// # Panics
    /// Panics if `table_bits` ∉ 1..=24 or `history_bits` > `table_bits`.
    #[must_use]
    pub fn with_sink(table_bits: u32, history_bits: u32, sink: S) -> Self {
        assert!(history_bits <= table_bits, "history wider than the table");
        LocalHistory {
            table: PatternTable::new(table_bits),
            targets: TargetMap::default(),
            histories: HashMap::new(),
            history_bits,
            dirty: false,
            sink,
        }
    }

    /// The telemetry sink.
    #[must_use]
    pub fn sink(&self) -> &S {
        &self.sink
    }

    fn index(&self, pc: Addr) -> u32 {
        let h = self.histories.get(&pc.0).copied().unwrap_or(0);
        (pc.0 << self.history_bits) ^ (h & ((1u32 << self.history_bits) - 1))
    }
}

impl Default for LocalHistory {
    /// 12-bit table, 6 bits of local history.
    fn default() -> Self {
        Self::new(12, 6)
    }
}

impl<S: TelemetrySink> BranchPredictor for LocalHistory<S> {
    fn name(&self) -> &'static str {
        "local-2level"
    }

    fn predict(&mut self, ev: &BranchEvent) -> Prediction {
        match ev.kind {
            BranchKind::Cond => {
                if self.table.predict(self.index(ev.pc)) {
                    match self.targets.predict(ev.pc) {
                        Some(t) => Prediction {
                            taken: true,
                            target: TargetInfo::Addr(t),
                            hit: None,
                        },
                        None => Prediction::not_taken(),
                    }
                } else {
                    Prediction::not_taken()
                }
            }
            _ => match self.targets.predict(ev.pc) {
                Some(t) => Prediction {
                    taken: true,
                    target: TargetInfo::Addr(t),
                    hit: None,
                },
                None => Prediction::not_taken(),
            },
        }
    }

    fn update(&mut self, ev: &BranchEvent, pred: &Prediction) {
        self.dirty = true;
        if self.sink.enabled() {
            emit_direction_probes(&mut self.sink, &self.targets, ev, pred);
        }
        self.targets.update(ev);
        if ev.kind == BranchKind::Cond {
            let idx = self.index(ev.pc);
            self.table.update(idx, ev.taken);
            let h = self.histories.entry(ev.pc.0).or_insert(0);
            *h = (*h << 1) | u32::from(ev.taken);
        }
    }

    fn flush(&mut self) {
        self.table = PatternTable::new((self.table.mask + 1).trailing_zeros());
        self.targets = TargetMap::default();
        self.histories.clear();
        self.dirty = false;
    }

    fn lane_spec(&self) -> Option<LaneSpec> {
        (!self.sink.enabled() && !self.dirty).then(|| LaneSpec::Local {
            table_bits: (self.table.mask + 1).trailing_zeros(),
            history_bits: self.history_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_util::cond;
    use crate::predictor::Evaluator;
    use crate::Cbtb;
    use branchlab_trace::ExecHooks;

    fn drive<P: BranchPredictor>(p: P, outcomes: &[bool]) -> Evaluator<P> {
        let mut e = Evaluator::new(p);
        for &t in outcomes {
            e.branch(&cond(16, t));
        }
        e
    }

    #[test]
    fn gshare_learns_alternation_that_defeats_counters() {
        // T,N,T,N… is pathological for a 2-bit counter but trivially
        // captured by 2+ bits of history.
        let outcomes: Vec<bool> = (0..400).map(|i| i % 2 == 0).collect();
        let gshare = drive(Gshare::default(), &outcomes);
        let cbtb = drive(Cbtb::paper(), &outcomes);
        assert!(
            gshare.stats.accuracy() > 0.9,
            "gshare on alternation: {}",
            gshare.stats.accuracy()
        );
        assert!(gshare.stats.accuracy() > cbtb.stats.accuracy() + 0.2);
    }

    #[test]
    fn local_history_learns_short_periodic_patterns() {
        // Period-3 pattern T,T,N…
        let outcomes: Vec<bool> = (0..600).map(|i| i % 3 != 2).collect();
        let local = drive(LocalHistory::default(), &outcomes);
        assert!(
            local.stats.accuracy() > 0.9,
            "local history on period-3: {}",
            local.stats.accuracy()
        );
    }

    #[test]
    fn biased_periodic_branches_become_deterministic() {
        // Period-8 pattern: every 8-bit history window is unique, so a
        // predictor with ≥8 bits of history learns it completely.
        let outcomes: Vec<bool> = (0..800).map(|i| i % 8 != 0).collect();
        let g = drive(Gshare::new(12, 8), &outcomes);
        assert!(g.stats.accuracy() > 0.9, "gshare {}", g.stats.accuracy());
        let l = drive(LocalHistory::new(14, 8), &outcomes);
        assert!(l.stats.accuracy() > 0.9, "local {}", l.stats.accuracy());
    }

    #[test]
    fn flush_resets_learning() {
        let outcomes: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let mut e = drive(Gshare::default(), &outcomes);
        let trained = e.stats.accuracy();
        e.predictor.flush();
        let mut fresh = Evaluator::new(e.predictor.clone());
        for &t in &outcomes[..20] {
            fresh.branch(&cond(16, t));
        }
        // Right after a flush the short-window accuracy is lower than
        // the trained asymptote.
        assert!(fresh.stats.accuracy() <= trained + 0.1);
    }

    #[test]
    fn real_program_accuracy_at_least_matches_cbtb() {
        let module = branchlab_minic::compile(
            r"
            int main() {
                int i; int s = 0;
                for (i = 0; i < 3000; i++) {
                    if (i % 2 == 0) { s += 1; }
                    if (i % 7 < 3) { s += 2; }
                }
                return s;
            }",
        )
        .unwrap();
        let program = branchlab_ir::lower(&module).unwrap();
        let mut g = Evaluator::new(Gshare::default());
        let mut c = Evaluator::new(Cbtb::paper());
        branchlab_interp::run(&program, &Default::default(), &[], &mut (&mut g, &mut c)).unwrap();
        assert!(
            g.stats.accuracy() >= c.stats.accuracy() - 0.01,
            "gshare {} vs cbtb {}",
            g.stats.accuracy(),
            c.stats.accuracy()
        );
    }
}
