//! A return-address stack (RAS) model.
//!
//! The machine model (DESIGN.md) excludes returns from branch statistics
//! on the grounds that a small hardware stack in the fetch unit predicts
//! them essentially perfectly. This module *checks* that claim instead
//! of assuming it: it consumes the interpreter's call/return hook stream
//! and scores a bounded stack's target predictions. With any realistic
//! depth the accuracy is ≥ 99.9% on the benchmark suite (see the
//! ablation study), which is what justifies the exclusion.

use branchlab_ir::{Addr, FuncId};
use branchlab_trace::ExecHooks;

/// A bounded return-address stack with wrap-around overwrite (the usual
/// hardware behaviour: overflow silently drops the oldest entry).
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    ring: Vec<Addr>,
    top: usize,
    live: usize,
    /// Returns observed.
    pub returns: u64,
    /// Returns whose predicted target matched the actual target.
    pub correct: u64,
    /// Calls that overwrote a live entry (stack overflow).
    pub overflows: u64,
    /// Returns that found the stack empty (underflow — mispredicted).
    pub underflows: u64,
}

impl ReturnAddressStack {
    /// A RAS with `depth` entries.
    ///
    /// # Panics
    /// Panics if `depth` is 0.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "RAS depth must be positive");
        ReturnAddressStack {
            ring: vec![Addr(0); depth],
            top: 0,
            live: 0,
            returns: 0,
            correct: 0,
            overflows: 0,
            underflows: 0,
        }
    }

    /// Depth of the stack.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.ring.len()
    }

    /// Prediction accuracy over the observed returns.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.returns == 0 {
            0.0
        } else {
            self.correct as f64 / self.returns as f64
        }
    }

    fn push(&mut self, addr: Addr) {
        if self.live == self.ring.len() {
            self.overflows += 1;
        } else {
            self.live += 1;
        }
        self.top = (self.top + 1) % self.ring.len();
        self.ring[self.top] = addr;
    }

    fn pop(&mut self) -> Option<Addr> {
        if self.live == 0 {
            return None;
        }
        let v = self.ring[self.top];
        self.top = (self.top + self.ring.len() - 1) % self.ring.len();
        self.live -= 1;
        Some(v)
    }
}

impl ExecHooks for ReturnAddressStack {
    fn call(&mut self, from: Addr, _callee: FuncId) {
        self.push(from.offset(1));
    }

    fn ret(&mut self, _from: Addr, to: Addr) {
        self.returns += 1;
        match self.pop() {
            Some(predicted) if predicted == to => self.correct += 1,
            Some(_) => {}
            None => self.underflows += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(ras: &mut ReturnAddressStack, from: u32) {
        ras.call(Addr(from), FuncId(0));
    }
    fn ret(ras: &mut ReturnAddressStack, to: u32) {
        ras.ret(Addr(0), Addr(to));
    }

    #[test]
    fn balanced_calls_predict_perfectly() {
        let mut ras = ReturnAddressStack::new(8);
        call(&mut ras, 10);
        call(&mut ras, 20);
        call(&mut ras, 30);
        ret(&mut ras, 31);
        ret(&mut ras, 21);
        ret(&mut ras, 11);
        assert_eq!(ras.returns, 3);
        assert_eq!(ras.correct, 3);
        assert!((ras.accuracy() - 1.0).abs() < 1e-12);
        assert_eq!(ras.overflows, 0);
    }

    #[test]
    fn deep_recursion_overflows_and_mispredicts_old_frames() {
        let mut ras = ReturnAddressStack::new(2);
        for i in 0..4 {
            call(&mut ras, i * 10);
        }
        assert_eq!(ras.overflows, 2);
        // Innermost two return correctly, outer two were overwritten.
        ret(&mut ras, 31);
        ret(&mut ras, 21);
        ret(&mut ras, 11);
        ret(&mut ras, 1);
        assert_eq!(ras.correct, 2);
        assert_eq!(ras.underflows, 2);
        assert!((ras.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn underflow_counts_as_misprediction() {
        let mut ras = ReturnAddressStack::new(4);
        ret(&mut ras, 5);
        assert_eq!(ras.returns, 1);
        assert_eq!(ras.correct, 0);
        assert_eq!(ras.underflows, 1);
    }

    #[test]
    fn wrong_target_is_not_correct() {
        let mut ras = ReturnAddressStack::new(4);
        call(&mut ras, 10); // predicts 11
        ret(&mut ras, 99);
        assert_eq!(ras.correct, 0);
        assert_eq!(ras.underflows, 0);
    }

    #[test]
    fn works_against_real_execution() {
        let src = r"
            int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
            int main() { return fib(12); }
        ";
        let module = branchlab_minic::compile(src).unwrap();
        let program = branchlab_ir::lower(&module).unwrap();
        let mut ras = ReturnAddressStack::new(64);
        branchlab_interp::run(&program, &Default::default(), &[], &mut ras).unwrap();
        assert!(ras.returns > 100);
        // Every observed return is predicted (`main`'s terminating
        // return is program end, not a control transfer, and is not
        // reported).
        assert_eq!(ras.underflows, 0);
        assert_eq!(ras.correct, ras.returns);
        assert!((ras.accuracy() - 1.0).abs() < 1e-12);
        // A 4-deep RAS loses some of the depth-12 recursion…
        let mut small = ReturnAddressStack::new(4);
        branchlab_interp::run(&program, &Default::default(), &[], &mut small).unwrap();
        assert!(small.accuracy() < 1.0);
        assert!(small.accuracy() > 0.3);
    }
}
