//! Multi-level Branch Target Buffer hierarchy — the post-1989 regime.
//!
//! The paper's SBTB/CBTB assume a single 256-entry fully-associative
//! buffer, which server-scale instruction footprints overflow. Real
//! designs answered with a *hierarchy*: a small, fast first level backed
//! by one or more larger, slower levels (cf. Gupta & Panda's Micro BTB),
//! with entries promoted toward L1 on reuse and demoted on eviction.
//!
//! [`MlBtb`] is a parametric N-level buffer: per level
//! [`MlBtbLevel::entries`] / [`MlBtbLevel::ways`] (true-LRU within each
//! set) and a [`MlBtbLevel::latency`] lookup penalty, plus a hierarchy
//! [`FillPolicy`] choosing where new entries land and how hits climb.
//! Direction prediction reuses the CBTB's n-bit saturating counter
//! (predict taken when `C ≥ T`), so a single-level `MlBtb` is
//! prediction-identical to [`Cbtb`](crate::Cbtb) at the same geometry —
//! a property a unit test pins down.
//!
//! The hierarchy keeps each branch resident in at most one level: hits
//! move entries up (promotion), evictions cascade down (demotion), and
//! only last-level victims leave the buffer.

use branchlab_ir::Addr;
use branchlab_telemetry::{NoopSink, ProbeEvent, ProbeKind, TelemetrySink};
use branchlab_trace::BranchEvent;

use crate::assoc::AssocBuffer;
use crate::lanes::saturating_step;
use crate::predictor::{BranchPredictor, Prediction, TargetInfo};

/// Geometry and lookup cost of one BTB level.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MlBtbLevel {
    /// Total entries at this level.
    pub entries: usize,
    /// Associativity (ways per set); `entries` for fully associative.
    pub ways: usize,
    /// Extra fetch cycles charged when a prediction is served from this
    /// level (0 for a single-cycle L1). Accumulated in
    /// [`MlBtbStats::latency_cycles`]; a full miss charges the sum of
    /// all level latencies (the lookup walked the whole hierarchy).
    pub latency: u32,
}

/// Where new entries are filled and how hits are promoted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FillPolicy {
    /// Inclusive-L1: new entries fill L1, and a hit at any lower level
    /// promotes the entry straight back to L1. Victims demote one level
    /// down. Fast to re-warm, but streaming branch populations churn L1.
    L1,
    /// Staged climb: new entries fill the *last* level and each hit
    /// promotes one level up, so a branch must prove reuse before it
    /// reaches L1 (hysteresis against single-use pollution).
    Staged,
}

impl FillPolicy {
    /// Stable lowercase name (the server's canonical spelling).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            FillPolicy::L1 => "l1",
            FillPolicy::Staged => "staged",
        }
    }
}

/// Full multi-level BTB configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MlBtbConfig {
    /// Levels ordered L1 → last; at least one.
    pub levels: Vec<MlBtbLevel>,
    /// Fill + promotion policy.
    pub policy: FillPolicy,
    /// Direction counter width in bits (the CBTB's 2 by default).
    pub counter_bits: u8,
    /// Predict-taken threshold `T` (`C ≥ T`).
    pub threshold: u8,
}

impl MlBtbConfig {
    /// The paper's single-level geometry: 256 entries, fully
    /// associative, 2-bit counters, T = 2 — prediction-identical to
    /// [`CbtbConfig::paper`](crate::CbtbConfig::paper).
    #[must_use]
    pub fn paper() -> Self {
        MlBtbConfig {
            levels: vec![MlBtbLevel {
                entries: 256,
                ways: 256,
                latency: 0,
            }],
            policy: FillPolicy::L1,
            counter_bits: 2,
            threshold: 2,
        }
    }

    /// A server-scale two-level hierarchy: a 64-entry 4-way L1 in front
    /// of a 2048-entry 8-way L2 with a 2-cycle lookup penalty.
    #[must_use]
    pub fn server() -> Self {
        MlBtbConfig {
            levels: vec![
                MlBtbLevel {
                    entries: 64,
                    ways: 4,
                    latency: 0,
                },
                MlBtbLevel {
                    entries: 2048,
                    ways: 8,
                    latency: 2,
                },
            ],
            policy: FillPolicy::L1,
            counter_bits: 2,
            threshold: 2,
        }
    }

    fn counter_max(&self) -> u8 {
        ((1u16 << self.counter_bits) - 1) as u8
    }

    /// Sum of all level latencies — what a full miss pays for walking
    /// the hierarchy.
    #[must_use]
    pub fn miss_latency(&self) -> u32 {
        self.levels.iter().map(|l| l.latency).sum()
    }
}

impl Default for MlBtbConfig {
    fn default() -> Self {
        Self::server()
    }
}

/// Per-level hit/miss/fill/evict accounting.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Lookups served by this level.
    pub hits: u64,
    /// Lookups that searched this level and missed.
    pub misses: u64,
    /// Entries placed into this level (new, promoted, or demoted).
    pub fills: u64,
    /// Entries displaced out of this level by a fill.
    pub evicts: u64,
}

/// Whole-hierarchy statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MlBtbStats {
    /// One entry per configured level, L1 first.
    pub levels: Vec<LevelStats>,
    /// Entries moved up a level on a hit.
    pub promotions: u64,
    /// Displaced entries moved down a level instead of leaving.
    pub demotions: u64,
    /// Entries evicted out of the last level (left the hierarchy).
    pub dropped: u64,
    /// Accumulated lookup-latency penalty cycles (per-level `latency`
    /// of the serving level; full misses pay the sum of all levels).
    pub latency_cycles: u64,
}

/// One resident branch.
#[derive(Copy, Clone, Debug)]
struct MlEntry {
    counter: u8,
    target: Addr,
}

/// Where the entry served by the last `predict` now resides, so
/// `update` can revisit it without re-searching the hierarchy.
#[derive(Copy, Clone, Debug)]
struct LastHit {
    pc: u32,
    /// Level the entry resides at *after* any promotion.
    level: usize,
    /// Way within that level, when known (no-promotion fast path).
    way: Option<u32>,
}

/// The multi-level BTB.
///
/// Generic over a [`TelemetrySink`]; the default [`NoopSink`] keeps
/// `enabled()` constant-false so the uninstrumented predictor
/// monomorphizes with no probe code on the hot path. `lane_spec`
/// deliberately stays the trait default (`None`): hierarchy state does
/// not pack into the bit-parallel lanes, so the sweep planner routes
/// `mlbtb` points to the scalar path.
///
/// ```
/// use branchlab_predict::{Evaluator, MlBtb};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let module = branchlab_minic::compile(
///     "int main() { int i; int s = 0; for (i = 0; i < 100; i++) { s += i; } return s; }",
/// )?;
/// let program = branchlab_ir::lower(&module)?;
/// let mut eval = Evaluator::new(MlBtb::server());
/// branchlab_interp::run(&program, &Default::default(), &[], &mut eval)?;
/// assert!(eval.stats.accuracy() > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct MlBtb<S: TelemetrySink = NoopSink> {
    levels: Vec<AssocBuffer<MlEntry>>,
    config: MlBtbConfig,
    stats: MlBtbStats,
    sink: S,
    last_hit: Option<LastHit>,
}

impl MlBtb {
    /// Build a multi-level BTB.
    ///
    /// # Panics
    /// Panics on an empty level list, invalid per-level geometry,
    /// zero-width or >7-bit counters, or a threshold outside the
    /// counter range.
    #[must_use]
    pub fn new(config: MlBtbConfig) -> Self {
        Self::with_sink(config, NoopSink)
    }

    /// The paper's single-level 256-entry geometry (CBTB-equivalent).
    #[must_use]
    pub fn paper() -> Self {
        Self::new(MlBtbConfig::paper())
    }

    /// The server-scale two-level hierarchy of [`MlBtbConfig::server`].
    #[must_use]
    pub fn server() -> Self {
        Self::new(MlBtbConfig::server())
    }
}

impl<S: TelemetrySink> MlBtb<S> {
    /// Build a multi-level BTB that publishes probe events to `sink`.
    ///
    /// # Panics
    /// Panics on an empty level list, invalid per-level geometry,
    /// zero-width or >7-bit counters, or a threshold outside the
    /// counter range.
    #[must_use]
    pub fn with_sink(config: MlBtbConfig, sink: S) -> Self {
        assert!(!config.levels.is_empty(), "at least one level required");
        for (i, lvl) in config.levels.iter().enumerate() {
            assert!(
                lvl.ways > 0 && lvl.entries.is_multiple_of(lvl.ways),
                "level {i}: entries must be a multiple of ways"
            );
            assert!(
                (lvl.entries / lvl.ways).is_power_of_two(),
                "level {i}: set count must be a power of two"
            );
        }
        assert!(
            (1..=7).contains(&config.counter_bits),
            "counter bits must be in 1..=7"
        );
        assert!(
            config.threshold >= 1 && config.threshold <= config.counter_max(),
            "threshold must be in 1..=counter max"
        );
        let levels = config
            .levels
            .iter()
            .map(|l| AssocBuffer::new(l.entries / l.ways, l.ways))
            .collect();
        MlBtb {
            levels,
            stats: MlBtbStats {
                levels: vec![LevelStats::default(); config.levels.len()],
                ..MlBtbStats::default()
            },
            config,
            sink,
            last_hit: None,
        }
    }

    /// The configuration this buffer was built with.
    #[must_use]
    pub fn config(&self) -> &MlBtbConfig {
        &self.config
    }

    /// Hierarchy statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &MlBtbStats {
        &self.stats
    }

    /// The telemetry sink.
    #[must_use]
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Total resident entries across all levels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.iter().map(AssocBuffer::len).sum()
    }

    /// Whether every level is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(AssocBuffer::is_empty)
    }

    #[inline]
    fn probe(&mut self, site: u32, kind: ProbeKind) {
        if self.sink.enabled() {
            self.sink.emit(ProbeEvent { site, kind });
        }
    }

    /// Place `entry` into `level`, demoting displaced victims one level
    /// down; the last level's victim leaves the hierarchy.
    fn place(&mut self, mut level: usize, mut key: u32, mut entry: MlEntry) {
        loop {
            self.stats.levels[level].fills += 1;
            match self.levels[level].insert(key, entry) {
                None => return,
                Some((victim_key, victim)) => {
                    self.stats.levels[level].evicts += 1;
                    if level + 1 == self.levels.len() {
                        self.stats.dropped += 1;
                        self.probe(victim_key, ProbeKind::Evict);
                        return;
                    }
                    self.stats.demotions += 1;
                    level += 1;
                    key = victim_key;
                    entry = victim;
                }
            }
        }
    }
}

impl Default for MlBtb {
    fn default() -> Self {
        Self::server()
    }
}

impl<S: TelemetrySink> BranchPredictor for MlBtb<S> {
    fn name(&self) -> &'static str {
        "MLBTB"
    }

    fn predict(&mut self, ev: &BranchEvent) -> Prediction {
        let pc = ev.pc.0;
        let mut found: Option<(usize, u32, MlEntry)> = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            if let Some((way, e)) = level.lookup_pos(pc) {
                found = Some((i, way, *e));
                break;
            }
            self.stats.levels[i].misses += 1;
        }
        match found {
            Some((level, way, entry)) => {
                self.stats.levels[level].hits += 1;
                self.stats.latency_cycles += u64::from(self.config.levels[level].latency);
                self.probe(pc, ProbeKind::Hit);
                if level == 0 {
                    self.last_hit = Some(LastHit {
                        pc,
                        level: 0,
                        way: Some(way),
                    });
                } else {
                    // Promote: straight to L1 (inclusive-L1) or one
                    // level up (staged climb); victims cascade down.
                    let dest = match self.config.policy {
                        FillPolicy::L1 => 0,
                        FillPolicy::Staged => level - 1,
                    };
                    self.levels[level].remove_at(pc, way);
                    self.stats.promotions += 1;
                    self.place(dest, pc, entry);
                    self.last_hit = Some(LastHit {
                        pc,
                        level: dest,
                        way: None,
                    });
                }
                Prediction {
                    taken: entry.counter >= self.config.threshold,
                    target: TargetInfo::Addr(entry.target),
                    hit: Some(true),
                }
            }
            None => {
                self.stats.latency_cycles += u64::from(self.config.miss_latency());
                self.probe(pc, ProbeKind::Miss);
                self.last_hit = None;
                Prediction {
                    taken: false,
                    target: TargetInfo::None,
                    hit: Some(false),
                }
            }
        }
    }

    fn update(&mut self, ev: &BranchEvent, pred: &Prediction) {
        let pc = ev.pc.0;
        if self.sink.enabled() {
            let kind = if ev.taken {
                ProbeKind::Taken
            } else {
                ProbeKind::NotTaken
            };
            self.sink.emit(ProbeEvent { site: pc, kind });
            if !pred.is_correct(ev) {
                self.sink.emit(ProbeEvent {
                    site: pc,
                    kind: ProbeKind::Mispredict,
                });
            }
            if ev.taken {
                if let Some(entry) = self.levels.iter().find_map(|l| l.peek(pc)) {
                    if entry.target != ev.target {
                        self.sink.emit(ProbeEvent {
                            site: pc,
                            kind: ProbeKind::Alias,
                        });
                    }
                }
            }
        }
        let max = self.config.counter_max();
        let resident = match self.last_hit.take() {
            // predict already located (and possibly promoted) this
            // entry; revisit it at its recorded position.
            Some(lh) if lh.pc == pc => match lh.way {
                Some(way) => self.levels[lh.level].touch(pc, way),
                None => self.levels[lh.level].lookup(pc),
            },
            _ => self.levels.iter_mut().find_map(|l| l.lookup(pc)),
        };
        if let Some(entry) = resident {
            entry.counter = saturating_step(entry.counter, max, ev.taken);
            if ev.taken {
                entry.target = ev.target;
            }
        } else {
            let counter = if ev.taken {
                self.config.threshold
            } else {
                self.config.threshold - 1
            };
            let fill = match self.config.policy {
                FillPolicy::L1 => 0,
                FillPolicy::Staged => self.levels.len() - 1,
            };
            self.place(
                fill,
                pc,
                MlEntry {
                    counter,
                    target: ev.target,
                },
            );
        }
    }

    fn flush(&mut self) {
        for level in &mut self.levels {
            level.flush();
        }
        self.last_hit = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbtb::Cbtb;
    use crate::predictor::test_util::{cond, cond_to};
    use crate::predictor::Evaluator;
    use branchlab_trace::ExecHooks;

    fn tiny(policy: FillPolicy) -> MlBtbConfig {
        MlBtbConfig {
            levels: vec![
                MlBtbLevel {
                    entries: 1,
                    ways: 1,
                    latency: 0,
                },
                MlBtbLevel {
                    entries: 2,
                    ways: 2,
                    latency: 3,
                },
            ],
            policy,
            counter_bits: 2,
            threshold: 2,
        }
    }

    #[test]
    fn single_level_is_prediction_identical_to_cbtb() {
        let mut ml = Evaluator::new(MlBtb::paper());
        let mut cb = Evaluator::new(Cbtb::paper());
        let mut x = 12345u64;
        for i in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pc = 10 + (x >> 33) as u32 % 400; // overflow the 256 entries
            let taken = (x >> 13) & 3 != 0;
            let ev = cond_to(pc, taken, pc + 100 + (i % 3));
            ml.branch(&ev);
            cb.branch(&ev);
        }
        assert_eq!(ml.stats, cb.stats);
    }

    #[test]
    fn l2_hit_promotes_to_l1_and_demotes_the_victim() {
        let mut e = Evaluator::new(MlBtb::new(tiny(FillPolicy::L1)));
        e.branch(&cond_to(10, true, 50)); // miss → fill L1
        e.branch(&cond_to(20, true, 60)); // miss → fill L1, 10 demoted to L2
        assert_eq!(e.predictor.stats().demotions, 1);
        e.branch(&cond_to(10, true, 50)); // L2 hit → promote 10, demote 20
        let s = e.predictor.stats().clone();
        assert_eq!(s.levels[1].hits, 1);
        assert_eq!(s.promotions, 1);
        assert_eq!(s.demotions, 2);
        assert_eq!(s.dropped, 0);
        // 10 now fronts L1 again.
        e.branch(&cond_to(10, true, 50));
        assert_eq!(e.predictor.stats().levels[0].hits, 1);
    }

    #[test]
    fn staged_policy_fills_the_last_level_first() {
        let mut e = Evaluator::new(MlBtb::new(tiny(FillPolicy::Staged)));
        e.branch(&cond_to(10, true, 50)); // miss → fill L2
        let s = e.predictor.stats().clone();
        assert_eq!(s.levels[1].fills, 1);
        assert_eq!(s.levels[0].fills, 0);
        e.branch(&cond_to(10, true, 50)); // L2 hit → climb to L1
        let s = e.predictor.stats().clone();
        assert_eq!(s.levels[1].hits, 1);
        assert_eq!(s.promotions, 1);
        e.branch(&cond_to(10, true, 50)); // now an L1 hit
        assert_eq!(e.predictor.stats().levels[0].hits, 1);
    }

    #[test]
    fn hierarchy_retains_what_a_bare_l1_would_drop() {
        // 8 round-robin branches through a 4-entry L1: alone it thrashes
        // (zero hits); backed by a 16-entry L2 every revisit hits.
        let l1 = MlBtbLevel {
            entries: 4,
            ways: 4,
            latency: 0,
        };
        let l2 = MlBtbLevel {
            entries: 16,
            ways: 16,
            latency: 2,
        };
        let mk = |levels: Vec<MlBtbLevel>| {
            Evaluator::new(MlBtb::new(MlBtbConfig {
                levels,
                policy: FillPolicy::L1,
                counter_bits: 2,
                threshold: 2,
            }))
        };
        let mut bare = mk(vec![l1]);
        let mut ml = mk(vec![l1, l2]);
        for round in 0..6 {
            for pc in 0..8u32 {
                let ev = cond_to(100 + pc * 10, true, 500 + pc);
                bare.branch(&ev);
                ml.branch(&ev);
                let _ = round;
            }
        }
        assert_eq!(bare.stats.btb_lookups, ml.stats.btb_lookups);
        assert!(
            ml.stats.btb_misses < bare.stats.btb_misses,
            "hierarchy {} vs bare {}",
            ml.stats.btb_misses,
            bare.stats.btb_misses
        );
        assert_eq!(bare.stats.btb_misses, 48); // every lookup thrashes
        assert_eq!(ml.stats.btb_misses, 8); // compulsory only
    }

    #[test]
    fn latency_charges_serving_level_and_full_walk_on_miss() {
        let mut e = Evaluator::new(MlBtb::new(tiny(FillPolicy::L1)));
        e.branch(&cond_to(10, true, 50)); // full miss: 0 + 3
        assert_eq!(e.predictor.stats().latency_cycles, 3);
        e.branch(&cond_to(10, true, 50)); // L1 hit: +0
        assert_eq!(e.predictor.stats().latency_cycles, 3);
        e.branch(&cond_to(20, true, 60)); // full miss: +3 (10 → L2)
        e.branch(&cond_to(10, true, 50)); // L2 hit: +3
        assert_eq!(e.predictor.stats().latency_cycles, 9);
    }

    #[test]
    fn dropped_entries_probe_evict() {
        use branchlab_telemetry::SiteProbe;
        let mut e = Evaluator::new(MlBtb::with_sink(tiny(FillPolicy::L1), SiteProbe::enabled()));
        // Capacity is 1 + 2 = 3; the fourth distinct branch drops one.
        for pc in [10, 20, 30, 40] {
            e.branch(&cond_to(pc, true, pc + 5));
        }
        assert_eq!(e.predictor.stats().dropped, 1);
        let probe = e.predictor.sink();
        let evicted: u64 = probe.sites().values().map(|c| c.evicts).sum();
        assert_eq!(evicted, 1);
        // The very first branch is the LRU chain's tail.
        assert_eq!(probe.sites()[&10].evicts, 1);
    }

    #[test]
    fn counters_keep_direction_through_one_anomaly() {
        let mut e = Evaluator::new(MlBtb::server());
        for taken in [true, true, true, false, true] {
            e.branch(&cond_to(10, taken, 50));
        }
        // miss-wrong, correct, correct, wrong, correct (counter held).
        assert_eq!(e.stats.correct, 3);
    }

    #[test]
    fn not_taken_branches_are_resident() {
        let mut e = Evaluator::new(MlBtb::server());
        e.branch(&cond(10, false));
        e.branch(&cond(10, false));
        assert_eq!(e.stats.btb_misses, 1);
        assert_eq!(e.stats.correct, 2);
    }

    #[test]
    fn flush_empties_every_level() {
        let mut e = Evaluator::new(MlBtb::new(tiny(FillPolicy::L1)));
        for pc in [10, 20, 30] {
            e.branch(&cond_to(pc, true, pc + 5));
        }
        assert_eq!(e.predictor.len(), 3);
        e.predictor.flush();
        assert!(e.predictor.is_empty());
    }

    #[test]
    fn lane_spec_is_unpackable() {
        // The planner must fall back to the scalar path for hierarchies.
        assert!(MlBtb::paper().lane_spec().is_none());
        assert!(MlBtb::server().lane_spec().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_level_list_rejected() {
        let _ = MlBtb::new(MlBtbConfig {
            levels: vec![],
            ..MlBtbConfig::server()
        });
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = MlBtb::new(MlBtbConfig {
            levels: vec![MlBtbLevel {
                entries: 24,
                ways: 2,
                latency: 0,
            }],
            ..MlBtbConfig::server()
        });
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_above_counter_max_rejected() {
        let _ = MlBtb::new(MlBtbConfig {
            counter_bits: 2,
            threshold: 4,
            ..MlBtbConfig::server()
        });
    }
}
