//! Static and profile-based predictors.
//!
//! [`ForwardSemantic`] is the paper's software scheme viewed from the
//! prediction side: per-site likely bits derived from profiling, encoded
//! targets (always right for direct branches, never for indirect ones),
//! and no volatile state — `flush` is a no-op, which is precisely why the
//! paper argues the scheme is immune to context switches.
//!
//! [`AlwaysTaken`], [`AlwaysNotTaken`], and [`BackwardTakenForwardNot`]
//! are the classic static baselines the paper's related-work section
//! surveys (≈63–77% and ≈76.5% reported accuracies); they are included
//! for the ablation benches.

use std::collections::HashMap;

use branchlab_ir::{BranchId, Cond};
use branchlab_trace::{BranchEvent, BranchKind, SiteStats};

use crate::assoc::BuildKeyHasher;
use crate::predictor::{BranchPredictor, Prediction, TargetInfo};

/// Follows the likely bit *encoded in the executing instruction* — the
/// prediction side of a Forward-Semantic-transformed binary, where the
/// recompilation already set each branch's bit. Equivalent to
/// [`ForwardSemantic`] with the same profile, but needs no side table.
#[derive(Copy, Clone, Debug, Default)]
pub struct LikelyBit;

impl BranchPredictor for LikelyBit {
    fn name(&self) -> &'static str {
        "FS-bit"
    }

    fn predict(&mut self, ev: &BranchEvent) -> Prediction {
        match ev.kind {
            BranchKind::Cond => {
                if ev.likely {
                    Prediction {
                        taken: true,
                        target: TargetInfo::Encoded,
                        hit: None,
                    }
                } else {
                    Prediction::not_taken()
                }
            }
            BranchKind::UncondDirect | BranchKind::UncondIndirect => Prediction {
                taken: true,
                target: TargetInfo::Encoded,
                hit: None,
            },
        }
    }

    fn update(&mut self, _ev: &BranchEvent, _pred: &Prediction) {}
}

/// Predict every branch taken (direction-only).
#[derive(Copy, Clone, Debug, Default)]
pub struct AlwaysTaken;

impl BranchPredictor for AlwaysTaken {
    fn name(&self) -> &'static str {
        "always-taken"
    }

    fn predict(&mut self, _ev: &BranchEvent) -> Prediction {
        Prediction {
            taken: true,
            target: TargetInfo::None,
            hit: None,
        }
    }

    fn update(&mut self, _ev: &BranchEvent, _pred: &Prediction) {}
}

/// Predict every branch not-taken (the no-hardware default of §2.1).
#[derive(Copy, Clone, Debug, Default)]
pub struct AlwaysNotTaken;

impl BranchPredictor for AlwaysNotTaken {
    fn name(&self) -> &'static str {
        "always-not-taken"
    }

    fn predict(&mut self, _ev: &BranchEvent) -> Prediction {
        Prediction::not_taken()
    }

    fn update(&mut self, _ev: &BranchEvent, _pred: &Prediction) {}
}

/// Backward-taken / forward-not-taken: predict taken exactly when the
/// target precedes the branch (loop back-edges). J. E. Smith's study
/// reports ≈76.5% average accuracy for this on FORTRAN codes.
#[derive(Copy, Clone, Debug, Default)]
pub struct BackwardTakenForwardNot;

impl BranchPredictor for BackwardTakenForwardNot {
    fn name(&self) -> &'static str {
        "btfn"
    }

    fn predict(&mut self, ev: &BranchEvent) -> Prediction {
        if ev.target < ev.pc {
            Prediction {
                taken: true,
                target: TargetInfo::Encoded,
                hit: None,
            }
        } else {
            Prediction::not_taken()
        }
    }

    fn update(&mut self, _ev: &BranchEvent, _pred: &Prediction) {}
}

/// Opcode-based static prediction (Lee & Smith): one fixed direction
/// per branch opcode (here: per comparison kind), derived offline from
/// performance studies and "stored in a ROM". The paper's related work
/// reports 66.2%–86.7% accuracy for this class of scheme.
#[derive(Clone, Debug)]
pub struct OpcodeBias {
    taken: [bool; 6],
}

impl OpcodeBias {
    fn idx(c: Cond) -> usize {
        match c {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Lt => 2,
            Cond::Le => 3,
            Cond::Gt => 4,
            Cond::Ge => 5,
        }
    }

    /// The classic ROM heuristics: equality tests are usually guards
    /// that fail (`==` not-taken, `!=` taken); orderings are usually
    /// loop conditions (taken).
    #[must_use]
    pub fn heuristic() -> Self {
        let mut taken = [false; 6];
        taken[Self::idx(Cond::Ne)] = true;
        taken[Self::idx(Cond::Lt)] = true;
        taken[Self::idx(Cond::Le)] = true;
        OpcodeBias { taken }
    }

    /// Derive the ROM contents from aggregate per-opcode statistics of a
    /// training trace (the "performance studies" of the related work):
    /// `counts[opcode] = (taken, total)`.
    #[must_use]
    pub fn from_counts(counts: &[(u64, u64); 6]) -> Self {
        let mut taken = [false; 6];
        for (i, (t, n)) in counts.iter().enumerate() {
            taken[i] = *t * 2 > *n;
        }
        OpcodeBias { taken }
    }

    /// The direction this scheme predicts for a comparison kind.
    #[must_use]
    pub fn predicts_taken(&self, c: Cond) -> bool {
        self.taken[Self::idx(c)]
    }
}

impl Default for OpcodeBias {
    fn default() -> Self {
        Self::heuristic()
    }
}

impl BranchPredictor for OpcodeBias {
    fn name(&self) -> &'static str {
        "opcode-bias"
    }

    fn predict(&mut self, ev: &BranchEvent) -> Prediction {
        match (ev.kind, ev.cond) {
            (BranchKind::Cond, Some(c)) => {
                if self.predicts_taken(c) {
                    Prediction {
                        taken: true,
                        target: TargetInfo::Encoded,
                        hit: None,
                    }
                } else {
                    Prediction::not_taken()
                }
            }
            _ => Prediction {
                taken: true,
                target: TargetInfo::Encoded,
                hit: None,
            },
        }
    }

    fn update(&mut self, _ev: &BranchEvent, _pred: &Prediction) {}
}

/// Collect per-opcode taken/total counts from a trace (the training
/// pass for [`OpcodeBias::from_counts`]).
#[derive(Copy, Clone, Debug, Default)]
pub struct OpcodeCounts {
    /// `(taken, total)` per comparison kind, indexed like `OpcodeBias`.
    pub counts: [(u64, u64); 6],
}

impl branchlab_trace::ExecHooks for OpcodeCounts {
    fn branch(&mut self, ev: &BranchEvent) {
        if let (BranchKind::Cond, Some(c)) = (ev.kind, ev.cond) {
            let e = &mut self.counts[OpcodeBias::idx(c)];
            e.0 += u64::from(ev.taken);
            e.1 += 1;
        }
    }
}

/// The Forward Semantic's prediction side: a likely bit per branch site,
/// set by the profiling compiler. Conditional branches follow their
/// site's bit; direct unconditional branches are trivially correct
/// (encoded target); indirect ones cannot be predicted by a compile-time
/// scheme at all.
#[derive(Clone, Debug, Default)]
pub struct ForwardSemantic {
    likely: HashMap<BranchId, bool, BuildKeyHasher>,
}

impl ForwardSemantic {
    /// Build from explicit likely bits.
    #[must_use]
    pub fn new(likely: HashMap<BranchId, bool>) -> Self {
        ForwardSemantic {
            likely: likely.into_iter().collect(),
        }
    }

    /// Derive likely bits from profile data: a site is likely-taken when
    /// its observed taken probability exceeds ½ (majority vote, as the
    /// paper's recompilation step does).
    #[must_use]
    pub fn from_profile(profile: &SiteStats) -> Self {
        let likely = profile
            .iter()
            .map(|(site, c)| (site, c.taken * 2 > c.total))
            .collect();
        ForwardSemantic { likely }
    }

    /// The likely bit for a site (sites never profiled default to
    /// not-taken, matching the not-taken fetch default).
    #[must_use]
    pub fn is_likely(&self, site: BranchId) -> bool {
        self.likely.get(&site).copied().unwrap_or(false)
    }

    /// Number of sites carrying a bit.
    #[must_use]
    pub fn len(&self) -> usize {
        self.likely.len()
    }

    /// Whether no site has a bit.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.likely.is_empty()
    }
}

impl BranchPredictor for ForwardSemantic {
    fn name(&self) -> &'static str {
        "FS"
    }

    fn predict(&mut self, ev: &BranchEvent) -> Prediction {
        match ev.kind {
            BranchKind::Cond => {
                if self.is_likely(ev.branch) {
                    Prediction {
                        taken: true,
                        target: TargetInfo::Encoded,
                        hit: None,
                    }
                } else {
                    Prediction::not_taken()
                }
            }
            // Extremely-biased likely branch with an encoded target:
            // always right for direct, never for indirect.
            BranchKind::UncondDirect | BranchKind::UncondIndirect => Prediction {
                taken: true,
                target: TargetInfo::Encoded,
                hit: None,
            },
        }
    }

    fn update(&mut self, _ev: &BranchEvent, _pred: &Prediction) {}

    // flush(): default no-op — context switches cannot hurt a
    // compiler-encoded scheme.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::test_util::{cond, cond_to, indirect, jmp};
    use crate::predictor::Evaluator;
    use branchlab_ir::{BlockId, FuncId};
    use branchlab_trace::ExecHooks;

    #[test]
    fn always_taken_scores_direction_only() {
        let mut e = Evaluator::new(AlwaysTaken);
        e.branch(&cond(0, true));
        e.branch(&cond(0, false));
        e.branch(&indirect(0, 9));
        assert_eq!(e.stats.correct, 2);
    }

    #[test]
    fn always_not_taken_mirrors() {
        let mut e = Evaluator::new(AlwaysNotTaken);
        e.branch(&cond(0, true));
        e.branch(&cond(0, false));
        assert_eq!(e.stats.correct, 1);
    }

    #[test]
    fn btfn_predicts_backward_taken() {
        let mut e = Evaluator::new(BackwardTakenForwardNot);
        e.branch(&cond_to(100, true, 50)); // backward taken → correct
        e.branch(&cond_to(100, false, 50)); // backward not taken → wrong
        e.branch(&cond_to(100, false, 150)); // forward not taken → correct
        e.branch(&cond_to(100, true, 150)); // forward taken → wrong
        assert_eq!(e.stats.correct, 2);
    }

    fn site(b: u32) -> BranchId {
        BranchId {
            func: FuncId(0),
            block: BlockId(b),
        }
    }

    #[test]
    fn forward_semantic_follows_profile_majority() {
        let mut prof = SiteStats::new();
        for taken in [true, true, false] {
            prof.branch(&cond(7, taken)); // site block=7, majority taken
        }
        for taken in [false, false, true] {
            prof.branch(&cond(9, taken)); // majority not-taken
        }
        let fs = ForwardSemantic::from_profile(&prof);
        assert!(fs.is_likely(site(7)));
        assert!(!fs.is_likely(site(9)));
        assert!(!fs.is_likely(site(999))); // unprofiled → not-taken
        assert_eq!(fs.len(), 2);
    }

    #[test]
    fn forward_semantic_exact_split_is_not_likely() {
        let mut prof = SiteStats::new();
        prof.branch(&cond(7, true));
        prof.branch(&cond(7, false));
        let fs = ForwardSemantic::from_profile(&prof);
        assert!(!fs.is_likely(site(7)), "50/50 must default to not-taken");
    }

    #[test]
    fn forward_semantic_accuracy_equals_majority_rate_on_self_profile() {
        // 70/30 biased site: FS accuracy on the same trace must be 70%.
        let events: Vec<_> = (0..100).map(|i| cond(7, i % 10 < 7)).collect();
        let mut prof = SiteStats::new();
        for ev in &events {
            prof.branch(ev);
        }
        let mut e = Evaluator::new(ForwardSemantic::from_profile(&prof));
        for ev in &events {
            e.branch(ev);
        }
        assert_eq!(e.stats.correct, 70);
    }

    #[test]
    fn forward_semantic_handles_unconditional_classes() {
        let mut e = Evaluator::new(ForwardSemantic::default());
        e.branch(&jmp(0, 9)); // direct: encoded target → correct
        e.branch(&indirect(0, 9)); // indirect: unknowable → wrong
        assert_eq!(e.stats.correct, 1);
    }

    #[test]
    fn forward_semantic_flush_is_noop() {
        let mut prof = SiteStats::new();
        prof.branch(&cond(7, true));
        prof.branch(&cond(7, true));
        let mut fs = ForwardSemantic::from_profile(&prof);
        fs.flush();
        assert!(fs.is_likely(site(7)), "flush must not erase compiled bits");
    }
}
