//! # branchlab-predict
//!
//! Branch prediction schemes for the `branchlab` reproduction of
//! Hwu/Conte/Chang, *ISCA 1989*:
//!
//! * [`Sbtb`] — the Simple Branch Target Buffer (taken branches only,
//!   delete-on-mispredict), 256-entry fully-associative LRU by default.
//! * [`Cbtb`] — the Counter-based BTB with n-bit saturating counters
//!   (2-bit, threshold 2 by default).
//! * [`MlBtb`] — a parametric multi-level BTB hierarchy (set-associative
//!   levels with true-LRU sets, fill/promotion policies, per-level
//!   lookup-latency penalties) for server-scale instruction footprints
//!   beyond the paper's single 256-entry buffer.
//! * [`ForwardSemantic`] — the software scheme's prediction side:
//!   profile-derived likely bits with encoded targets.
//! * [`AlwaysTaken`], [`AlwaysNotTaken`], [`BackwardTakenForwardNot`] —
//!   static baselines from the paper's related work.
//! * [`Evaluator`] — scores any [`BranchPredictor`] over a branch-event
//!   stream, producing the accuracy `A` and miss ratio `ρ` of Table 3.
//! * [`LaneFamily`] — bit-parallel SoA scoring of up to 32 compatible
//!   sweep configurations per event in packed `u64` lanes, bit-identical
//!   to per-configuration [`Evaluator`] runs.
//! * [`ContextSwitched`] — periodic-flush wrapper for the context-switch
//!   sensitivity study the paper discusses qualitatively.
//!
//! ```
//! use branchlab_predict::{Evaluator, Sbtb};
//! use branchlab_trace::ExecHooks;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = branchlab_minic::compile(
//!     "int main() { int i; int s = 0; for (i = 0; i < 100; i++) { s += i; } return s; }",
//! )?;
//! let program = branchlab_ir::lower(&module)?;
//! let mut eval = Evaluator::new(Sbtb::paper());
//! branchlab_interp::run(&program, &Default::default(), &[], &mut eval)?;
//! assert!(eval.stats.accuracy() > 0.9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod assoc;
mod cbtb;
mod lanes;
mod mlbtb;
mod predictor;
mod ras;
mod sbtb;
mod statics;
mod twolevel;

pub use assoc::AssocBuffer;
pub use cbtb::{Cbtb, CbtbConfig};
pub use lanes::{
    CbtbLanes, GshareLanes, LaneFamily, LaneFamilyKey, LaneSpec, LocalLanes, MAX_LANES,
};
pub use mlbtb::{FillPolicy, LevelStats, MlBtb, MlBtbConfig, MlBtbLevel, MlBtbStats};
pub use predictor::{
    BranchPredictor, ContextSwitched, Evaluator, PredStats, Prediction, TargetInfo,
};
pub use ras::ReturnAddressStack;
pub use sbtb::{Sbtb, SbtbConfig};
pub use statics::{
    AlwaysNotTaken, AlwaysTaken, BackwardTakenForwardNot, ForwardSemantic, LikelyBit, OpcodeBias,
    OpcodeCounts,
};
pub use twolevel::{Gshare, LocalHistory};
