//! The predictor interface and the scoring harness that turns a
//! predictor into an [`ExecHooks`] sink with accuracy/miss-ratio
//! accounting (the source of the paper's Table 3).

use branchlab_ir::Addr;
use branchlab_trace::{BranchEvent, BranchKind, ExecHooks};

/// Where a taken-prediction's target comes from, which decides whether a
/// taken-prediction can actually steer the fetch unit correctly.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TargetInfo {
    /// No target available (direction-only predictor, e.g. always-taken
    /// without a BTB). Scored on direction alone.
    None,
    /// A concrete target remembered by hardware (BTB entry); correct only
    /// if it matches the actual target.
    Addr(Addr),
    /// The target encoded in the instruction (compiler schemes). Always
    /// right for direct branches, never right for indirect ones.
    Encoded,
}

/// A prediction made at fetch time.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Target source for a taken prediction.
    pub target: TargetInfo,
    /// BTB lookup outcome: `Some(true)` hit, `Some(false)` miss, `None`
    /// for predictors without a buffer.
    pub hit: Option<bool>,
}

impl Prediction {
    /// A buffer-less not-taken prediction.
    #[must_use]
    pub fn not_taken() -> Self {
        Prediction {
            taken: false,
            target: TargetInfo::None,
            hit: None,
        }
    }

    /// Was this prediction correct for the resolved branch `ev`?
    ///
    /// Correct means the fetch unit was steered onto the right path:
    /// direction matches, and for a taken prediction the supplied target
    /// (if the scheme supplies one) matches the actual target.
    #[must_use]
    pub fn is_correct(&self, ev: &BranchEvent) -> bool {
        if !self.taken {
            return !ev.taken;
        }
        if !ev.taken {
            return false;
        }
        match self.target {
            TargetInfo::None => true,
            TargetInfo::Addr(a) => a == ev.target,
            TargetInfo::Encoded => ev.kind != BranchKind::UncondIndirect,
        }
    }
}

/// A branch prediction scheme.
///
/// `Send` is a supertrait so a boxed `dyn BranchPredictor` can be moved
/// to a sweep worker thread; every predictor is plain owned data, so the
/// bound costs implementors nothing.
pub trait BranchPredictor: Send {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Predict the branch at fetch time. Implementations may update
    /// internal LRU state but must not observe `ev.taken`/`ev.target`.
    fn predict(&mut self, ev: &BranchEvent) -> Prediction;

    /// Learn from the resolved branch (called after [`predict`] with the
    /// prediction it returned).
    ///
    /// [`predict`]: BranchPredictor::predict
    fn update(&mut self, ev: &BranchEvent, pred: &Prediction);

    /// Discard volatile state (context switch). Default: no-op, which is
    /// exactly right for compiler-based schemes.
    fn flush(&mut self) {}

    /// Score a block of events into `stats` — per event the exact
    /// predict → tally → update sequence of [`Evaluator::branch`].
    ///
    /// The default body is the only implementation; it lives on the
    /// trait so every concrete predictor gets a monomorphized loop with
    /// `predict`/`update` statically dispatched and inlined. Driving a
    /// `dyn BranchPredictor` block-wise therefore costs one virtual
    /// call per block instead of two per event.
    fn eval_block(&mut self, events: &[BranchEvent], stats: &mut PredStats) {
        for ev in events {
            let pred = self.predict(ev);
            stats.tally(ev, &pred);
            self.update(ev, &pred);
        }
    }

    /// Describe this predictor as a packable sweep lane, or `None` to
    /// stay on the scalar path (the default).
    ///
    /// Contract: return `Some` only while the predictor's state is
    /// *exactly* the freshly-constructed state the spec describes —
    /// the lane engine rebuilds the configuration from the spec alone,
    /// and the planner swaps it in for this instance. Instrumented
    /// predictors (enabled telemetry sinks) must return `None`: lane
    /// scoring does not replay per-event probes.
    fn lane_spec(&self) -> Option<crate::lanes::LaneSpec> {
        None
    }
}

impl<P: BranchPredictor + ?Sized> BranchPredictor for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn predict(&mut self, ev: &BranchEvent) -> Prediction {
        (**self).predict(ev)
    }
    fn update(&mut self, ev: &BranchEvent, pred: &Prediction) {
        (**self).update(ev, pred)
    }
    fn flush(&mut self) {
        (**self).flush()
    }
    fn eval_block(&mut self, events: &[BranchEvent], stats: &mut PredStats) {
        (**self).eval_block(events, stats)
    }
    fn lane_spec(&self) -> Option<crate::lanes::LaneSpec> {
        (**self).lane_spec()
    }
}

/// Accuracy and miss-ratio accounting for one predictor over one trace.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PredStats {
    /// Branch events scored.
    pub events: u64,
    /// Correct predictions.
    pub correct: u64,
    /// Conditional branch events.
    pub cond_events: u64,
    /// Correct predictions on conditional branches.
    pub cond_correct: u64,
    /// Events where the predictor consulted a buffer.
    pub btb_lookups: u64,
    /// Buffer lookups that missed.
    pub btb_misses: u64,
}

impl PredStats {
    /// Overall prediction accuracy `A` (all branches, as in the paper's
    /// cost model).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        ratio(self.correct, self.events)
    }

    /// Accuracy restricted to conditional branches.
    #[must_use]
    pub fn cond_accuracy(&self) -> f64 {
        ratio(self.cond_correct, self.cond_events)
    }

    /// Buffer miss ratio `ρ` (0 for buffer-less predictors).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        ratio(self.btb_misses, self.btb_lookups)
    }

    /// Score one resolved prediction (the accounting half of
    /// [`Evaluator::branch`], shared with
    /// [`BranchPredictor::eval_block`]).
    #[inline]
    pub fn tally(&mut self, ev: &BranchEvent, pred: &Prediction) {
        let correct = pred.is_correct(ev);
        self.events += 1;
        self.correct += u64::from(correct);
        if ev.kind == BranchKind::Cond {
            self.cond_events += 1;
            self.cond_correct += u64::from(correct);
        }
        if let Some(hit) = pred.hit {
            self.btb_lookups += 1;
            self.btb_misses += u64::from(!hit);
        }
    }

    /// Merge another run's statistics.
    pub fn merge(&mut self, other: &PredStats) {
        self.events += other.events;
        self.correct += other.correct;
        self.cond_events += other.cond_events;
        self.cond_correct += other.cond_correct;
        self.btb_lookups += other.btb_lookups;
        self.btb_misses += other.btb_misses;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Drives a predictor over a branch-event stream and scores it.
///
/// `Evaluator` implements [`ExecHooks`], so it can be handed straight to
/// the interpreter (and composed with other sinks via tuples).
#[derive(Clone, Debug, Default)]
pub struct Evaluator<P> {
    /// The predictor under evaluation.
    pub predictor: P,
    /// Accumulated scoring.
    pub stats: PredStats,
}

impl<P: BranchPredictor> Evaluator<P> {
    /// Wrap a predictor with fresh statistics.
    pub fn new(predictor: P) -> Self {
        Evaluator {
            predictor,
            stats: PredStats::default(),
        }
    }
}

impl<P: BranchPredictor> Evaluator<P> {
    /// Score a whole block of events in one predictor call (see
    /// [`BranchPredictor::eval_block`]).
    pub fn branch_block(&mut self, events: &[BranchEvent]) {
        self.predictor.eval_block(events, &mut self.stats);
    }
}

impl<P: BranchPredictor> ExecHooks for Evaluator<P> {
    fn branch(&mut self, ev: &BranchEvent) {
        let pred = self.predictor.predict(ev);
        self.stats.tally(ev, &pred);
        self.predictor.update(ev, &pred);
    }
}

/// Wraps a predictor and flushes it every `interval` branches, modelling
/// context switches. The paper notes the Forward Semantic is immune to
/// this while BTB schemes suffer; `flush` on compiler schemes is a no-op,
/// so this wrapper reproduces exactly that asymmetry.
#[derive(Clone, Debug)]
pub struct ContextSwitched<P> {
    inner: P,
    interval: u64,
    since_switch: u64,
}

impl<P: BranchPredictor> ContextSwitched<P> {
    /// Flush `inner` every `interval` branch events.
    ///
    /// # Panics
    /// Panics if `interval` is 0.
    pub fn new(inner: P, interval: u64) -> Self {
        assert!(interval > 0, "context-switch interval must be positive");
        ContextSwitched {
            inner,
            interval,
            since_switch: 0,
        }
    }
}

impl<P: BranchPredictor> BranchPredictor for ContextSwitched<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn predict(&mut self, ev: &BranchEvent) -> Prediction {
        self.since_switch += 1;
        if self.since_switch >= self.interval {
            self.since_switch = 0;
            self.inner.flush();
        }
        self.inner.predict(ev)
    }

    fn update(&mut self, ev: &BranchEvent, pred: &Prediction) {
        self.inner.update(ev, pred);
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use branchlab_ir::{Addr, BlockId, BranchId, FuncId};
    use branchlab_trace::{BranchEvent, BranchKind};

    /// A conditional branch event at `pc` with the given outcome.
    pub fn cond(pc: u32, taken: bool) -> BranchEvent {
        cond_to(pc, taken, 100)
    }

    /// A conditional branch event with an explicit target.
    pub fn cond_to(pc: u32, taken: bool, target: u32) -> BranchEvent {
        BranchEvent {
            pc: Addr(pc),
            kind: BranchKind::Cond,
            taken,
            target: Addr(target),
            fallthrough: Addr(pc + 1),
            branch: BranchId {
                func: FuncId(0),
                block: BlockId(pc),
            },
            likely: false,
            cond: Some(branchlab_ir::Cond::Eq),
        }
    }

    /// An unconditional direct jump event.
    pub fn jmp(pc: u32, target: u32) -> BranchEvent {
        BranchEvent {
            kind: BranchKind::UncondDirect,
            taken: true,
            ..cond_to(pc, true, target)
        }
    }

    /// An indirect (unknown-target) jump event.
    pub fn indirect(pc: u32, target: u32) -> BranchEvent {
        BranchEvent {
            kind: BranchKind::UncondIndirect,
            taken: true,
            ..cond_to(pc, true, target)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::{cond, cond_to, indirect, jmp};
    use super::*;

    #[test]
    fn not_taken_prediction_scoring() {
        let p = Prediction::not_taken();
        assert!(p.is_correct(&cond(0, false)));
        assert!(!p.is_correct(&cond(0, true)));
    }

    #[test]
    fn taken_prediction_requires_matching_target() {
        let p = Prediction {
            taken: true,
            target: TargetInfo::Addr(Addr(100)),
            hit: Some(true),
        };
        assert!(p.is_correct(&cond_to(0, true, 100)));
        assert!(!p.is_correct(&cond_to(0, true, 200)));
        assert!(!p.is_correct(&cond_to(0, false, 100)));
    }

    #[test]
    fn encoded_target_fails_only_on_indirect() {
        let p = Prediction {
            taken: true,
            target: TargetInfo::Encoded,
            hit: None,
        };
        assert!(p.is_correct(&cond_to(0, true, 77)));
        assert!(p.is_correct(&jmp(0, 77)));
        assert!(!p.is_correct(&indirect(0, 77)));
    }

    #[test]
    fn direction_only_taken_prediction_ignores_target() {
        let p = Prediction {
            taken: true,
            target: TargetInfo::None,
            hit: None,
        };
        assert!(p.is_correct(&cond_to(0, true, 42)));
    }

    struct Fixed(bool);
    impl BranchPredictor for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn predict(&mut self, _: &BranchEvent) -> Prediction {
            Prediction {
                taken: self.0,
                target: TargetInfo::None,
                hit: None,
            }
        }
        fn update(&mut self, _: &BranchEvent, _: &Prediction) {}
    }

    #[test]
    fn evaluator_accumulates_accuracy() {
        let mut e = Evaluator::new(Fixed(false));
        for taken in [false, false, true, false] {
            e.branch(&cond(0, taken));
        }
        assert_eq!(e.stats.events, 4);
        assert_eq!(e.stats.correct, 3);
        assert!((e.stats.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(e.stats.cond_accuracy(), 0.75);
        assert_eq!(e.stats.miss_ratio(), 0.0);
    }

    #[test]
    fn pred_stats_merge() {
        let mut a = PredStats {
            events: 10,
            correct: 9,
            ..Default::default()
        };
        let b = PredStats {
            events: 10,
            correct: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.events, 20);
        assert!((a.accuracy() - 0.7).abs() < 1e-12);
    }

    struct CountFlush {
        flushes: u32,
    }
    impl BranchPredictor for CountFlush {
        fn name(&self) -> &'static str {
            "count"
        }
        fn predict(&mut self, _: &BranchEvent) -> Prediction {
            Prediction::not_taken()
        }
        fn update(&mut self, _: &BranchEvent, _: &Prediction) {}
        fn flush(&mut self) {
            self.flushes += 1;
        }
    }

    #[test]
    fn context_switch_flushes_on_interval() {
        let mut p = ContextSwitched::new(CountFlush { flushes: 0 }, 10);
        for _ in 0..35 {
            let _ = p.predict(&cond(0, true));
        }
        assert_eq!(p.inner.flushes, 3);
    }
}
