//! Model-based property tests: the set-associative LRU buffer must
//! behave exactly like a naive reference implementation under arbitrary
//! operation sequences, and the BTBs must uphold their structural
//! invariants on random branch streams.

use proptest::prelude::*;

use branchlab_predict::{AssocBuffer, Cbtb, CbtbConfig, Evaluator, Sbtb, SbtbConfig};
use branchlab_ir::{Addr, BlockId, BranchId, FuncId};
use branchlab_trace::{BranchEvent, BranchKind, ExecHooks};

/// Reference fully-associative LRU: a Vec ordered by recency.
#[derive(Default)]
struct RefLru {
    entries: Vec<(u32, i32)>, // most recent last
    capacity: usize,
}

impl RefLru {
    fn lookup(&mut self, key: u32) -> Option<i32> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let e = self.entries.remove(pos);
        self.entries.push(e);
        Some(self.entries.last().unwrap().1)
    }
    fn insert(&mut self, key: u32, value: i32) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((key, value));
    }
    fn remove(&mut self, key: u32) -> Option<i32> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        Some(self.entries.remove(pos).1)
    }
}

#[derive(Clone, Debug)]
enum Op {
    Lookup(u32),
    Insert(u32, i32),
    Remove(u32),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..24).prop_map(Op::Lookup),
        ((0u32..24), any::<i32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u32..24).prop_map(Op::Remove),
        Just(Op::Flush),
    ]
}

proptest! {
    #[test]
    fn fully_associative_buffer_matches_reference_lru(
        ops in prop::collection::vec(op_strategy(), 0..200),
        cap in 1usize..12,
    ) {
        let mut buf = AssocBuffer::fully_associative(cap);
        let mut model = RefLru { capacity: cap, ..Default::default() };
        for op in ops {
            match op {
                Op::Lookup(k) => {
                    prop_assert_eq!(buf.lookup(k).copied(), model.lookup(k));
                }
                Op::Insert(k, v) => {
                    buf.insert(k, v);
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(buf.remove(k), model.remove(k));
                }
                Op::Flush => {
                    buf.flush();
                    model.entries.clear();
                }
            }
            prop_assert_eq!(buf.len(), model.entries.len());
            prop_assert!(buf.len() <= cap);
        }
    }

    #[test]
    fn btbs_never_exceed_capacity_and_score_sanely(
        outcomes in prop::collection::vec((0u32..64, any::<bool>()), 1..300),
        entries_pow in 2u32..6,
    ) {
        let entries = 1usize << entries_pow;
        let mut sbtb = Evaluator::new(Sbtb::new(SbtbConfig { entries, ways: entries }));
        let mut cbtb = Evaluator::new(Cbtb::new(CbtbConfig {
            entries,
            ways: entries,
            ..CbtbConfig::paper()
        }));
        for &(pc, taken) in &outcomes {
            let ev = BranchEvent {
                pc: Addr(pc * 4),
                kind: BranchKind::Cond,
                taken,
                target: Addr(1000 + pc),
                fallthrough: Addr(pc * 4 + 1),
                branch: BranchId { func: FuncId(0), block: BlockId(pc) },
                likely: false,
                cond: Some(branchlab_ir::Cond::Eq),
            };
            sbtb.branch(&ev);
            cbtb.branch(&ev);
        }
        let n = outcomes.len() as u64;
        prop_assert_eq!(sbtb.stats.events, n);
        prop_assert_eq!(cbtb.stats.events, n);
        prop_assert!(sbtb.stats.correct <= n);
        prop_assert!(cbtb.stats.correct <= n);
        prop_assert!(sbtb.predictor.len() <= entries);
        prop_assert!(cbtb.predictor.len() <= entries);
        // SBTB holds only branches whose last resolution was taken… so
        // after the stream, misses must be consistent with lookups.
        prop_assert_eq!(sbtb.stats.btb_lookups, n);
        prop_assert!(sbtb.stats.btb_misses <= n);
    }

    #[test]
    fn counter_stays_within_range_under_any_pattern(
        outcomes in prop::collection::vec(any::<bool>(), 1..500),
        bits in 1u8..5,
    ) {
        // Indirectly validated: accuracy stays within [0, 1] and the
        // predictor never panics regardless of counter width.
        let threshold = 1 << (bits - 1);
        let mut e = Evaluator::new(Cbtb::new(CbtbConfig {
            counter_bits: bits,
            threshold,
            ..CbtbConfig::paper()
        }));
        for (i, &taken) in outcomes.iter().enumerate() {
            let ev = BranchEvent {
                pc: Addr(4),
                kind: BranchKind::Cond,
                taken,
                target: Addr(77),
                fallthrough: Addr(5),
                branch: BranchId { func: FuncId(0), block: BlockId(0) },
                likely: false,
                cond: Some(branchlab_ir::Cond::Eq),
            };
            e.branch(&ev);
            let _ = i;
        }
        let a = e.stats.accuracy();
        prop_assert!((0.0..=1.0).contains(&a));
    }
}
