//! Model-based randomized tests: the set-associative LRU buffer must
//! behave exactly like a naive reference implementation under arbitrary
//! operation sequences, and the BTBs must uphold their structural
//! invariants on random branch streams.
//!
//! Driven by the seeded `branchlab_telemetry::Rng` (the build has no
//! crates.io access, so no proptest): each case runs many independent
//! randomized trials from fixed seeds, which keeps failures
//! reproducible by construction.

use branchlab_ir::{Addr, BlockId, BranchId, FuncId};
use branchlab_predict::{AssocBuffer, Cbtb, CbtbConfig, Evaluator, Sbtb, SbtbConfig};
use branchlab_telemetry::Rng;
use branchlab_trace::{BranchEvent, BranchKind, ExecHooks};

/// Reference fully-associative LRU: a Vec ordered by recency.
#[derive(Default)]
struct RefLru {
    entries: Vec<(u32, i32)>, // most recent last
    capacity: usize,
}

impl RefLru {
    fn lookup(&mut self, key: u32) -> Option<i32> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let e = self.entries.remove(pos);
        self.entries.push(e);
        Some(self.entries.last().unwrap().1)
    }
    fn insert(&mut self, key: u32, value: i32) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((key, value));
    }
    fn remove(&mut self, key: u32) -> Option<i32> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        Some(self.entries.remove(pos).1)
    }
}

#[derive(Clone, Debug)]
enum Op {
    Lookup(u32),
    Insert(u32, i32),
    Remove(u32),
    Flush,
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.gen_range(0..10u32) {
        0..=3 => Op::Lookup(rng.gen_range(0..24u32)),
        4..=7 => Op::Insert(rng.gen_range(0..24u32), rng.next_u64() as i32),
        8 => Op::Remove(rng.gen_range(0..24u32)),
        _ => Op::Flush,
    }
}

fn cond_event(pc: u32, taken: bool) -> BranchEvent {
    BranchEvent {
        pc: Addr(pc * 4),
        kind: BranchKind::Cond,
        taken,
        target: Addr(1000 + pc),
        fallthrough: Addr(pc * 4 + 1),
        branch: BranchId {
            func: FuncId(0),
            block: BlockId(pc),
        },
        likely: false,
        cond: Some(branchlab_ir::Cond::Eq),
    }
}

#[test]
fn fully_associative_buffer_matches_reference_lru() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let cap = rng.gen_range(1..12usize);
        let n_ops = rng.gen_range(0..200usize);
        let mut buf = AssocBuffer::fully_associative(cap);
        let mut model = RefLru {
            capacity: cap,
            ..Default::default()
        };
        for i in 0..n_ops {
            let op = random_op(&mut rng);
            let ctx = format!("seed {seed} op {i}: {op:?}");
            match op {
                Op::Lookup(k) => {
                    assert_eq!(buf.lookup(k).copied(), model.lookup(k), "{ctx}");
                }
                Op::Insert(k, v) => {
                    buf.insert(k, v);
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    assert_eq!(buf.remove(k), model.remove(k), "{ctx}");
                }
                Op::Flush => {
                    buf.flush();
                    model.entries.clear();
                }
            }
            assert_eq!(buf.len(), model.entries.len(), "{ctx}");
            assert!(buf.len() <= cap, "{ctx}");
        }
    }
}

#[test]
fn btbs_never_exceed_capacity_and_score_sanely() {
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0x5eed ^ seed);
        let entries = 1usize << rng.gen_range(2..6u32);
        let n = rng.gen_range(1..300usize);
        let mut sbtb = Evaluator::new(Sbtb::new(SbtbConfig {
            entries,
            ways: entries,
        }));
        let mut cbtb = Evaluator::new(Cbtb::new(CbtbConfig {
            entries,
            ways: entries,
            ..CbtbConfig::paper()
        }));
        for _ in 0..n {
            let ev = cond_event(rng.gen_range(0..64u32), rng.gen_bool(0.5));
            sbtb.branch(&ev);
            cbtb.branch(&ev);
        }
        let n = n as u64;
        assert_eq!(sbtb.stats.events, n, "seed {seed}");
        assert_eq!(cbtb.stats.events, n, "seed {seed}");
        assert!(sbtb.stats.correct <= n, "seed {seed}");
        assert!(cbtb.stats.correct <= n, "seed {seed}");
        assert!(sbtb.predictor.len() <= entries, "seed {seed}");
        assert!(cbtb.predictor.len() <= entries, "seed {seed}");
        // SBTB holds only branches whose last resolution was taken… so
        // after the stream, misses must be consistent with lookups.
        assert_eq!(sbtb.stats.btb_lookups, n, "seed {seed}");
        assert!(sbtb.stats.btb_misses <= n, "seed {seed}");
    }
}

#[test]
fn counter_stays_within_range_under_any_pattern() {
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0xc0ffee ^ seed);
        let bits = rng.gen_range(1..5u8);
        let threshold = 1 << (bits - 1);
        // Indirectly validated: accuracy stays within [0, 1] and the
        // predictor never panics regardless of counter width.
        let mut e = Evaluator::new(Cbtb::new(CbtbConfig {
            counter_bits: bits,
            threshold,
            ..CbtbConfig::paper()
        }));
        for _ in 0..rng.gen_range(1..500usize) {
            let mut ev = cond_event(1, rng.gen_bool(0.5));
            ev.pc = Addr(4);
            ev.target = Addr(77);
            ev.fallthrough = Addr(5);
            ev.branch = BranchId {
                func: FuncId(0),
                block: BlockId(0),
            };
            e.branch(&ev);
        }
        let a = e.stats.accuracy();
        assert!((0.0..=1.0).contains(&a), "seed {seed}: accuracy {a}");
    }
}
